// Crash-isolated sharded campaigns: shard assignment and merge, stats
// raw-counter merging, tag-aware checkpoint tmp cleanup, and the
// Supervisor's worker-process lifecycle (spawn retry, heartbeat-timeout
// kills, crash/respawn/resume, quarantine after exhausted retries).
//
// The Supervisor.* tests spawn the real xtest binary (XTEST_BINARY_PATH,
// injected by CMake) as worker processes against a scenario file written
// to the test temp dir -- the same wire format the CLI uses.

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.h"
#include "sim/checkpoint.h"
#include "sim/supervisor.h"
#include "sim/verdict.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/parallel.h"

namespace xtest::sim {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc);
  f << text;
  ASSERT_TRUE(f.good()) << path;
}

// A small single-session data-bus campaign: big enough that every shard
// of up to 4 owns work, small enough that a worker process finishes in
// well under a second.
spec::ScenarioSpec worker_spec(std::size_t defects) {
  spec::ScenarioSpec s;
  s.name = "supervisor-test";
  s.bus = soc::BusKind::kData;
  s.defect_count = defects;
  s.multi_session = false;
  s.threads = 1;
  return s;
}

std::vector<Verdict> serial_verdicts(const spec::ScenarioSpec& s,
                                     util::CampaignStats* stats = nullptr) {
  util::CampaignStats local;
  CampaignOptions opts = s.campaign_options(stats != nullptr ? stats : &local);
  return run_detection_sessions(s.system, s.make_sessions(), s.bus,
                                s.make_library(), opts);
}

// Builds the SupervisorJob for `spec` exactly like the CLI does: scenario
// file as the job wire format, per-shard checkpoints under a unique base.
// Cleans its files up on destruction (and stale shard checkpoints from a
// previous failed run on construction).
struct SupervisorFixture {
  spec::ScenarioSpec spec;
  std::string base;
  SupervisorJob job;

  SupervisorFixture(spec::ScenarioSpec s, const std::string& tag,
                    std::string fault_spec = "")
      : spec(std::move(s)), base(temp_path("xtest_sup_" + tag + ".ckpt")) {
    remove_shard_files();
    job.binary = XTEST_BINARY_PATH;
    job.scenario_path = base + ".job.scn";
    job.defect_count = spec.defect_count;
    job.sections = {"session0"};
    job.checkpoint_key = default_checkpoint_key(spec.bus, spec.make_library());
    job.checkpoint_base = base;
    job.fault_spec = std::move(fault_spec);
    write_file(job.scenario_path, spec::serialize_scenario(spec));
  }

  ~SupervisorFixture() {
    std::error_code ec;
    fs::remove(job.scenario_path, ec);
    remove_shard_files();
  }

  void remove_shard_files() {
    std::error_code ec;
    for (std::size_t k = 0; k < 16; ++k)
      fs::remove(Supervisor::shard_checkpoint_path(base, k), ec);
  }
};

// Arms the process-wide injector (supervisor.* sites fire in the parent,
// i.e. in this test process) and guarantees disarm on scope exit.
struct GlobalFaults {
  explicit GlobalFaults(const std::string& spec) {
    util::FaultInjector::global().configure(spec);
  }
  ~GlobalFaults() { util::FaultInjector::global().disarm(); }
};

// ---------------------------------------------------------------------------
// Shard assignment.

TEST(ShardSpec, OwnershipPartitionsTheLibrary) {
  constexpr std::size_t kDefects = 13;
  for (std::size_t count = 1; count <= 5; ++count) {
    std::size_t owned_total = 0;
    for (std::size_t k = 0; k < count; ++k) {
      const ShardSpec shard{k, count};
      std::size_t owned = 0;
      for (std::size_t i = 0; i < kDefects; ++i) {
        // Exactly one shard owns each index.
        std::size_t owners = 0;
        for (std::size_t j = 0; j < count; ++j)
          owners += ShardSpec{j, count}.owns(i) ? 1 : 0;
        EXPECT_EQ(owners, 1u) << "index " << i << " count " << count;
        owned += shard.owns(i) ? 1 : 0;
      }
      EXPECT_EQ(owned, shard.owned_of(kDefects))
          << "shard " << k << "/" << count;
      owned_total += owned;
    }
    EXPECT_EQ(owned_total, kDefects);
  }
}

TEST(ShardSpec, TrivialShardOwnsEverything) {
  const ShardSpec all;  // {0, 1}
  EXPECT_TRUE(all.owns(0));
  EXPECT_TRUE(all.owns(999));
  EXPECT_EQ(all.owned_of(42), 42u);
}

// ---------------------------------------------------------------------------
// In-process shard/merge equivalence.

TEST(ShardMerge, ShardedRunsMergeToTheSerialResultBitwise) {
  const spec::ScenarioSpec s = worker_spec(12);
  util::CampaignStats serial_stats;
  const std::vector<Verdict> serial = serial_verdicts(s, &serial_stats);

  for (const std::size_t count : {2u, 4u}) {
    std::vector<ShardResult> shards;
    for (std::size_t k = 0; k < count; ++k) {
      ShardResult r;
      r.shard = {k, count};
      CampaignOptions opts = s.campaign_options(&r.stats);
      opts.shard = r.shard;
      r.verdicts = run_detection_sessions(s.system, s.make_sessions(), s.bus,
                                          s.make_library(), opts);
      shards.push_back(std::move(r));
    }
    util::CampaignStats merged_stats;
    const std::vector<Verdict> merged =
        merge_shard_results(shards, &merged_stats);
    EXPECT_EQ(merged, serial) << count << " shards";
    // The verdict breakdown is a raw-counter sum over shards and must
    // reproduce the serial breakdown exactly.
    EXPECT_EQ(merged_stats.detected, serial_stats.detected);
    EXPECT_EQ(merged_stats.detected_by_timeout,
              serial_stats.detected_by_timeout);
    EXPECT_EQ(merged_stats.undetected, serial_stats.undetected);
    EXPECT_EQ(merged_stats.sim_errors, serial_stats.sim_errors);
  }
}

TEST(ShardMerge, ValidationRejectsBadPartitions) {
  const auto make = [](std::size_t index, std::size_t count,
                       std::size_t slots) {
    ShardResult r;
    r.shard = {index, count};
    r.verdicts.assign(slots, Verdict::kUndetected);
    return r;
  };

  // No shards at all.
  EXPECT_THROW(merge_shard_results({}), std::invalid_argument);
  // Missing shard: 2 results claiming a 3-way partition.
  EXPECT_THROW(merge_shard_results({make(0, 3, 6), make(1, 3, 6)}),
               std::invalid_argument);
  // Duplicate shard index.
  EXPECT_THROW(merge_shard_results({make(0, 2, 6), make(0, 2, 6)}),
               std::invalid_argument);
  // Shards disagreeing on the shard count.
  EXPECT_THROW(merge_shard_results({make(0, 2, 6), make(1, 3, 6)}),
               std::invalid_argument);
  // Shards disagreeing on the library size.
  EXPECT_THROW(merge_shard_results({make(0, 2, 6), make(1, 2, 7)}),
               std::invalid_argument);
  // A complete consistent partition is accepted.
  EXPECT_EQ(merge_shard_results({make(1, 2, 6), make(0, 2, 6)}).size(), 6u);
}

// ---------------------------------------------------------------------------
// Stats merging: raw counters sum; ratios recompute from the sums.

TEST(CampaignStatsMerge, RatiosRecomputeFromMergedRawCounters) {
  util::CampaignStats a;
  a.cache_hits = 90;
  a.cache_misses = 10;  // rate 0.9 over 100 transfers
  a.batch_lanes = 50;
  a.batch_capacity = 100;  // fill 0.5
  a.wall_seconds = 1.5;
  a.threads = 2;
  a.detected = 7;
  a.error_log = {"defect 3: boom"};

  util::CampaignStats b;
  b.cache_hits = 1;
  b.cache_misses = 9;  // rate 0.1 over only 10 transfers
  b.batch_lanes = 5;
  b.batch_capacity = 5;  // fill 1.0
  b.wall_seconds = 0.5;
  b.threads = 4;
  b.detected = 2;
  b.error_log = {"defect 8: bang"};

  a.merge_from(b);

  // (90 + 1) / (100 + 10), NOT the mean of 0.9 and 0.1: the big shard
  // dominates because the merge sums raw counters.
  EXPECT_DOUBLE_EQ(a.cache_hit_rate(), 91.0 / 110.0);
  EXPECT_DOUBLE_EQ(a.batch_fill(), 55.0 / 105.0);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 2.0);
  EXPECT_EQ(a.threads, 4u);
  EXPECT_EQ(a.detected, 9u);
  ASSERT_EQ(a.error_log.size(), 2u);
  EXPECT_EQ(a.error_log[1], "defect 8: bang");
}

TEST(CampaignStatsMerge, JsonLineRoundTripsThroughParse) {
  util::CampaignStats st;
  st.defects_simulated = 120;
  st.simulated_cycles = 987654;
  st.wall_seconds = 1.25;
  st.threads = 3;
  st.detected = 70;
  st.detected_by_timeout = 5;
  st.undetected = 40;
  st.sim_errors = 5;
  st.retries = 2;
  st.restored_from_checkpoint = 11;
  st.salvaged_sections = 1;
  st.dropped_slots = 4;
  st.flush_failures = 1;
  st.cache_hits = 1000;
  st.cache_misses = 50;
  st.gold_reuses = 6;
  st.gold_evictions = 2;
  st.batch_screened = 33;
  st.batched_transitions = 4444;
  st.batch_lanes = 110;
  st.batch_capacity = 128;

  util::CampaignStats got;
  ASSERT_TRUE(util::parse_stats_json(st.json("roundtrip"), got));
  EXPECT_EQ(got.defects_simulated, st.defects_simulated);
  EXPECT_EQ(got.simulated_cycles, st.simulated_cycles);
  EXPECT_NEAR(got.wall_seconds, st.wall_seconds, 1e-9);
  EXPECT_EQ(got.threads, st.threads);
  EXPECT_EQ(got.detected, st.detected);
  EXPECT_EQ(got.detected_by_timeout, st.detected_by_timeout);
  EXPECT_EQ(got.undetected, st.undetected);
  EXPECT_EQ(got.sim_errors, st.sim_errors);
  EXPECT_EQ(got.retries, st.retries);
  EXPECT_EQ(got.restored_from_checkpoint, st.restored_from_checkpoint);
  EXPECT_EQ(got.salvaged_sections, st.salvaged_sections);
  EXPECT_EQ(got.dropped_slots, st.dropped_slots);
  EXPECT_EQ(got.flush_failures, st.flush_failures);
  EXPECT_EQ(got.cache_hits, st.cache_hits);
  EXPECT_EQ(got.cache_misses, st.cache_misses);
  EXPECT_EQ(got.gold_reuses, st.gold_reuses);
  EXPECT_EQ(got.gold_evictions, st.gold_evictions);
  EXPECT_EQ(got.batch_screened, st.batch_screened);
  EXPECT_EQ(got.batched_transitions, st.batched_transitions);
  EXPECT_EQ(got.batch_lanes, st.batch_lanes);
  EXPECT_EQ(got.batch_capacity, st.batch_capacity);
}

TEST(CampaignStatsMerge, ParseRejectsLinesWithoutAStatsObject) {
  util::CampaignStats out;
  EXPECT_FALSE(util::parse_stats_json("no json here", out));
  EXPECT_FALSE(util::parse_stats_json("{\"unrelated\": 1}", out));
}

// ---------------------------------------------------------------------------
// Tag-aware checkpoint tmp cleanup (concurrent per-shard writers).

TEST(CheckpointTags, StaleTmpCleanupOnlyTouchesItsOwnTag) {
  const std::string path = temp_path("tagged.ckpt");
  std::error_code ec;
  fs::remove(path, ec);
  const std::string untagged_tmp = path + ".tmp.12345";
  const std::string s0_tmp = path + ".tmp.s0.23456";
  const std::string s1_tmp = path + ".tmp.s1.34567";
  write_file(untagged_tmp, "torn write\n");
  write_file(s0_tmp, "torn write\n");
  write_file(s1_tmp, "torn write\n");

  // Shard 0's checkpoint cleans only shard 0's stale tmps: the untagged
  // one and shard 1's survive.
  { CampaignCheckpoint ck(path, "key", 32, "s0"); }
  EXPECT_FALSE(fs::exists(s0_tmp));
  EXPECT_TRUE(fs::exists(untagged_tmp));
  EXPECT_TRUE(fs::exists(s1_tmp));

  // An untagged checkpoint cleans only untagged tmps.
  { CampaignCheckpoint ck(path, "key"); }
  EXPECT_FALSE(fs::exists(untagged_tmp));
  EXPECT_TRUE(fs::exists(s1_tmp));

  { CampaignCheckpoint ck(path, "key", 32, "s1"); }
  EXPECT_FALSE(fs::exists(s1_tmp));
  fs::remove(path, ec);
}

TEST(CheckpointTags, CrashBetweenFsyncAndRenameResumesFromLastRename) {
  const std::string path = temp_path("fsync_crash.ckpt");
  std::error_code ec;
  fs::remove(path, ec);

  // A worker flushes two verdicts durably (tmp + fsync + rename)...
  {
    CampaignCheckpoint ck(path, "key", 1, "s0");
    ck.restore("session0", 4);
    ck.record("session0", 0, Verdict::kDetected);
    ck.record("session0", 2, Verdict::kUndetected);
  }
  // ...then dies after fsync of the NEXT flush but before its rename: the
  // in-flight tmp is left behind with state the rename never published.
  const std::string orphan = path + ".tmp.s0.99999";
  write_file(orphan, "newer state that never got renamed\n");

  // The respawned worker removes the orphan and resumes from the last
  // *renamed* checkpoint -- the two published verdicts, nothing more.
  CampaignCheckpoint ck(path, "key", 1, "s0");
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_EQ(ck.salvage().dropped_slots, 0u);
  const auto slots = ck.restore("session0", 4);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], Verdict::kDetected);
  EXPECT_FALSE(slots[1].has_value());
  EXPECT_EQ(slots[2], Verdict::kUndetected);
  EXPECT_FALSE(slots[3].has_value());
  fs::remove(path, ec);
}

// ---------------------------------------------------------------------------
// Supervisor process tests (spawn the real xtest binary as workers).

TEST(Supervisor, SupervisedRunMatchesSerialBitwise) {
  const spec::ScenarioSpec s = worker_spec(10);
  util::CampaignStats serial_stats;
  const std::vector<Verdict> serial = serial_verdicts(s, &serial_stats);

  SupervisorFixture fx(s, "serial_match");
  SupervisorOptions opt;
  opt.workers = 3;
  SupervisorResult r = Supervisor(fx.job, opt).run();

  EXPECT_EQ(r.verdicts, serial);
  EXPECT_FALSE(r.degraded());
  EXPECT_EQ(r.respawns, 0u);
  EXPECT_GT(r.heartbeats, 0u);
  ASSERT_EQ(r.shards.size(), 3u);
  for (const ShardOutcome& sh : r.shards) {
    EXPECT_EQ(sh.spawns, 1u) << "shard " << sh.shard;
    EXPECT_FALSE(sh.quarantined) << "shard " << sh.shard;
  }
  // The merged breakdown reproduces the single-process campaign's.
  EXPECT_EQ(r.stats.detected, serial_stats.detected);
  EXPECT_EQ(r.stats.detected_by_timeout, serial_stats.detected_by_timeout);
  EXPECT_EQ(r.stats.undetected, serial_stats.undetected);
  EXPECT_EQ(r.stats.sim_errors, serial_stats.sim_errors);
}

TEST(Supervisor, MoreWorkersThanDefectsLeavesEmptyShardsHealthy) {
  const spec::ScenarioSpec s = worker_spec(3);
  const std::vector<Verdict> serial = serial_verdicts(s);

  SupervisorFixture fx(s, "empty_shards");
  SupervisorOptions opt;
  opt.workers = 5;  // shards 3 and 4 own zero defects
  SupervisorResult r = Supervisor(fx.job, opt).run();

  EXPECT_EQ(r.verdicts, serial);
  EXPECT_FALSE(r.degraded());
  EXPECT_EQ(r.shards.size(), 5u);
}

TEST(Supervisor, CrashingWorkersResumeFromCheckpointProgress) {
  spec::ScenarioSpec s = worker_spec(8);
  // Flush after every verdict so each doomed attempt still publishes
  // durable progress before worker.exit kills it on its 3rd verdict --
  // progress refills the retry budget, so the shards converge no matter
  // how many attempts it takes.
  s.checkpoint_every = 1;
  const std::vector<Verdict> serial = serial_verdicts(s);

  SupervisorFixture fx(s, "crash_resume", "worker.exit@3");
  SupervisorOptions opt;
  opt.workers = 2;
  opt.worker_backoff_ms = 1;
  SupervisorResult r = Supervisor(fx.job, opt).run();

  EXPECT_EQ(r.verdicts, serial);
  EXPECT_FALSE(r.degraded());
  EXPECT_GE(r.respawns, 1u);
  EXPECT_GT(r.stats.restored_from_checkpoint, 0u);
}

TEST(Supervisor, RetriesExhaustedQuarantinesTheShard) {
  spec::ScenarioSpec s = worker_spec(6);
  // No periodic flush: every attempt dies on its first verdict with
  // nothing durable, so there is never progress to refill the budget.
  s.checkpoint_every = 100000;

  SupervisorFixture fx(s, "quarantine", "worker.exit@1");
  SupervisorOptions opt;
  opt.workers = 2;
  opt.worker_retries = 1;
  opt.worker_backoff_ms = 1;
  SupervisorResult r = Supervisor(fx.job, opt).run();

  // Graceful degradation: the run completes (no throw), both shards are
  // quarantined, every unrecovered defect reads kSimError, and each shard
  // leaves one error_log entry behind.
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.quarantined().size(), 2u);
  ASSERT_EQ(r.verdicts.size(), 6u);
  for (const Verdict v : r.verdicts) EXPECT_EQ(v, Verdict::kSimError);
  EXPECT_EQ(r.stats.sim_errors, 6u);
  EXPECT_EQ(r.stats.error_log.size(), 2u);
  // worker_retries = 1 means exactly 2 spawns per shard: the first
  // attempt plus one progress-less retry.
  for (const ShardOutcome& sh : r.shards) EXPECT_EQ(sh.spawns, 2u);
}

TEST(Supervisor, SpawnFailureIsRetriedWithBackoff) {
  const spec::ScenarioSpec s = worker_spec(6);
  const std::vector<Verdict> serial = serial_verdicts(s);

  SupervisorFixture fx(s, "spawn_retry");
  // supervisor.spawn fires in THIS process: the first spawn attempt fails
  // synthetically and must be retried after backoff.
  GlobalFaults faults("supervisor.spawn@1");
  SupervisorOptions opt;
  opt.workers = 2;
  opt.worker_backoff_ms = 1;
  SupervisorResult r = Supervisor(fx.job, opt).run();

  EXPECT_EQ(r.verdicts, serial);
  EXPECT_FALSE(r.degraded());
  EXPECT_GE(r.respawns, 1u);
  EXPECT_EQ(util::FaultInjector::global().fired("supervisor.spawn"), 1u);
}

TEST(Supervisor, HeartbeatLossRacesNormalExitAndStaysClean) {
  spec::ScenarioSpec s = worker_spec(8);
  s.checkpoint_every = 1;
  const std::vector<Verdict> serial = serial_verdicts(s);

  SupervisorFixture fx(s, "hb_race");
  // The first received heartbeat batch is treated as lost, expiring that
  // worker's deadline immediately.  The SIGKILL then *races* the worker's
  // own completion: either the kill lands mid-campaign (failure path,
  // respawn, resume from checkpoint) or the worker exits 0 first and the
  // reap path must honor the clean exit despite the pending kill intent.
  // Both outcomes must end in the serial verdicts with no quarantine.
  GlobalFaults faults("supervisor.heartbeat@1");
  SupervisorOptions opt;
  opt.workers = 2;
  opt.worker_backoff_ms = 1;
  SupervisorResult r = Supervisor(fx.job, opt).run();

  EXPECT_EQ(r.verdicts, serial);
  EXPECT_FALSE(r.degraded());
  EXPECT_EQ(util::FaultInjector::global().fired("supervisor.heartbeat"), 1u);
}

}  // namespace
}  // namespace xtest::sim
