// Campaign service tests: frame codec (hostile-input-proof), persistent
// job queue (salvage), and the live daemon end to end -- submit/stream,
// malformed-byte rejection, submit dedupe, reconnect replay, idle reap,
// and restart-resume from the queue file.  Server tests run the daemon
// in-process on an ephemeral loopback port but spawn REAL worker
// processes (XTEST_BINARY_PATH), exactly like test_supervisor.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/frame.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "sim/campaign.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/net.h"
#include "util/parallel.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/subprocess.h"

namespace xtest::serve {
namespace {

// --- frame codec -----------------------------------------------------------

Frame make_frame(FrameType type, std::uint32_t seq, std::string payload) {
  Frame f;
  f.type = type;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

TEST(Frame, RoundTripsEveryType) {
  for (std::uint8_t t = 1; t <= static_cast<std::uint8_t>(FrameType::kShutdown);
       ++t) {
    const Frame in = make_frame(static_cast<FrameType>(t), 7u * t,
                                "payload for type " + std::to_string(t));
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(encode_frame(in)));
    const auto out = dec.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, in.type);
    EXPECT_EQ(out->seq, in.seq);
    EXPECT_EQ(out->payload, in.payload);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_FALSE(dec.poisoned());
  }
}

TEST(Frame, DecodesByteAtATime) {
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSubmit, 42, "one byte at a time"));
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(dec.feed(bytes.data() + i, 1));
    ASSERT_FALSE(dec.next().has_value()) << "frame completed early at " << i;
  }
  ASSERT_TRUE(dec.feed(bytes.data() + bytes.size() - 1, 1));
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, "one byte at a time");
}

TEST(Frame, DecodesSeveralFramesFromOneFeed) {
  std::string bytes;
  for (int i = 0; i < 5; ++i)
    bytes += encode_frame(
        make_frame(FrameType::kEvent, std::uint32_t(i), std::to_string(i)));
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(bytes));
  for (int i = 0; i < 5; ++i) {
    const auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->payload, std::to_string(i));
  }
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Frame, TruncationIsIncompleteNotError) {
  const std::string bytes =
      encode_frame(make_frame(FrameType::kSubmit, 1, "truncated mid-flight"));
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(bytes.data(), bytes.size() / 2));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.poisoned());
  EXPECT_GT(dec.buffered(), 0u);
}

TEST(Frame, BadMagicPoisons) {
  std::string bytes = encode_frame(make_frame(FrameType::kPing, 1, ""));
  bytes[0] = 'x';
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), FrameError::kBadMagic);
  EXPECT_FALSE(dec.next().has_value());
  // Poisoned decoders never resynchronize, even on valid bytes.
  EXPECT_FALSE(dec.feed(encode_frame(make_frame(FrameType::kPing, 2, ""))));
}

TEST(Frame, BadVersionPoisons) {
  std::string bytes = encode_frame(make_frame(FrameType::kPing, 1, ""));
  bytes[4] = 9;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), FrameError::kBadVersion);
}

TEST(Frame, BadTypePoisons) {
  for (const std::uint8_t bad : {std::uint8_t(0), std::uint8_t(14),
                                 std::uint8_t(255)}) {
    std::string bytes = encode_frame(make_frame(FrameType::kPing, 1, ""));
    bytes[5] = static_cast<char>(bad);
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(bytes));
    EXPECT_EQ(dec.error(), FrameError::kBadType);
  }
}

TEST(Frame, NonzeroReservedPoisons) {
  std::string bytes = encode_frame(make_frame(FrameType::kPing, 1, ""));
  bytes[6] = 1;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), FrameError::kBadReserved);
}

TEST(Frame, OversizeLengthRejectedBeforeBuffering) {
  // A hostile length field alone -- no payload bytes ever arrive -- must
  // poison as soon as the header is readable.
  std::string header;
  header.append(kMagic, sizeof kMagic);
  header.push_back(char(kProtocolVersion));
  header.push_back(char(static_cast<std::uint8_t>(FrameType::kSubmit)));
  header.push_back('\0');
  header.push_back('\0');
  put_u32(header, 1);
  put_u32(header, 0xFFFFFFFFu);  // 4 GiB "payload"
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(header));
  EXPECT_EQ(dec.error(), FrameError::kOversize);
  EXPECT_LE(dec.buffered(), kHeaderSize);
}

TEST(Frame, CorruptedByteFailsCrc) {
  std::string bytes =
      encode_frame(make_frame(FrameType::kSubmit, 3, "check my integrity"));
  bytes[kHeaderSize + 4] ^= 0x20;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(bytes));
  EXPECT_EQ(dec.error(), FrameError::kBadCrc);
}

TEST(Frame, FuzzedBytesNeverThrow) {
  // Property: arbitrary bytes either decode or poison; feed() never
  // throws and never fabricates a frame that passes CRC by luck (the
  // 1-in-2^32 chance is below fuzz-budget noise).
  util::Rng rng(20010618);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    const std::size_t n = 1 + rng.below(512);
    std::string junk(n, '\0');
    for (char& c : junk) c = static_cast<char>(rng.below(256));
    dec.feed(junk);
    while (dec.next().has_value()) {
    }
    SUCCEED();
  }
}

TEST(Frame, FuzzMutatedValidFramesRoundTripOrPoison) {
  util::Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    std::string payload(rng.below(64), 'x');
    for (char& c : payload) c = static_cast<char>('a' + rng.below(26));
    const Frame in = make_frame(
        static_cast<FrameType>(1 + rng.below(13)),
        static_cast<std::uint32_t>(rng.below(1u << 20)), payload);
    std::string bytes = encode_frame(in);
    const bool mutate = rng.below(2) == 0;
    if (mutate) bytes[rng.below(bytes.size())] ^= char(1 + rng.below(255));
    FrameDecoder dec;
    dec.feed(bytes);
    const auto out = dec.next();
    if (!mutate) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->payload, in.payload);
      EXPECT_EQ(out->type, in.type);
      EXPECT_EQ(out->seq, in.seq);
    } else if (out.has_value()) {
      // A mutation that still decodes must have produced a frame whose
      // bytes re-encode identically (i.e. it flipped nothing the CRC
      // covers -- impossible -- or cancelled out).  Accept only exact
      // equality with the original.
      EXPECT_EQ(encode_frame(*out), encode_frame(in));
    } else {
      EXPECT_TRUE(dec.poisoned() || dec.buffered() > 0);
    }
  }
}

TEST(Frame, PayloadHelpersAreBoundsChecked) {
  std::string buf;
  put_u32(buf, 0xDEADBEEFu);
  put_u64(buf, 0x0123456789ABCDEFull);
  std::size_t pos = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  ASSERT_TRUE(get_u32(buf, pos, u32));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(get_u64(buf, pos, u64));
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  // Reads past the end fail instead of walking off the buffer.
  EXPECT_FALSE(get_u32(buf, pos, u32));
  pos = buf.size() - 3;
  EXPECT_FALSE(get_u32(buf, pos, u32));
  pos = buf.size() - 7;
  EXPECT_FALSE(get_u64(buf, pos, u64));
}

// --- retry helpers ---------------------------------------------------------

TEST(Retry, WriteFullAndReadFullMoveEveryByte) {
  util::Pipe p = util::make_pipe();
  const std::string msg = "short write discipline";
  ASSERT_TRUE(util::write_full(p.write_fd, msg.data(), msg.size()));
  std::string got(msg.size(), '\0');
  ASSERT_EQ(util::read_full(p.read_fd, got.data(), got.size()),
            static_cast<ssize_t>(msg.size()));
  EXPECT_EQ(got, msg);
  util::close_fd(p.write_fd);
  // EOF: read_full reports the short count, not an error.
  char extra[8];
  EXPECT_EQ(util::read_full(p.read_fd, extra, sizeof extra), 0);
  util::close_fd(p.read_fd);
}

TEST(Retry, RetryEintrPassesThroughResults) {
  int calls = 0;
  const long r = util::retry_eintr([&]() -> long {
    ++calls;
    if (calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 17;
  });
  EXPECT_EQ(r, 17);
  EXPECT_EQ(calls, 3);
  errno = ENOENT;
  const long e = util::retry_eintr([]() -> long { return -1; });
  EXPECT_EQ(e, -1);
}

// --- job queue -------------------------------------------------------------

std::string temp_file(const std::string& name) {
  return ::testing::TempDir() + "xtest_serve_" + name + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

TEST(JobQueue, PriorityOrderFifoWithinBand) {
  JobQueue q("");  // in-memory
  q.enqueue("scn-a", 3);
  q.enqueue("scn-b", 7);
  q.enqueue("scn-c", 7);
  q.enqueue("scn-d", 9);
  ASSERT_NE(q.next_queued(), nullptr);
  EXPECT_EQ(q.next_queued()->scenario, "scn-d");
  q.next_queued()->state = JobState::kDone;
  EXPECT_EQ(q.next_queued()->scenario, "scn-b");  // FIFO inside priority 7
  q.next_queued()->state = JobState::kDone;
  EXPECT_EQ(q.next_queued()->scenario, "scn-c");
}

TEST(JobQueue, PersistsAndReloadsEverything) {
  const std::string path = temp_file("queue_roundtrip");
  std::remove(path.c_str());
  {
    JobQueue q(path);
    q.enqueue("multi\nline\nscenario", 4);
    const std::uint64_t id = q.enqueue("second", 8);
    Job* j = q.find(id);
    j->state = JobState::kDone;
    j->verdicts = "DDUT";
    j->stats_json = "{\"defects\":4}";
    j->exit_code = 0;
    j->attempts = 1;
    q.persist();
  }
  JobQueue q2(path);
  EXPECT_EQ(q2.load(), 2u);
  EXPECT_EQ(q2.salvage_dropped(), 0u);
  ASSERT_NE(q2.find(1), nullptr);
  EXPECT_EQ(q2.find(1)->scenario, "multi\nline\nscenario");
  EXPECT_EQ(q2.find(1)->state, JobState::kQueued);
  ASSERT_NE(q2.find(2), nullptr);
  EXPECT_EQ(q2.find(2)->state, JobState::kDone);
  EXPECT_EQ(q2.find(2)->verdicts, "DDUT");
  EXPECT_EQ(q2.find(2)->stats_json, "{\"defects\":4}");
  // New ids continue past everything reloaded.
  EXPECT_EQ(q2.enqueue("third", 5), 3u);
  std::remove(path.c_str());
}

TEST(JobQueue, RunningJobReloadsAsQueued) {
  const std::string path = temp_file("queue_running");
  std::remove(path.c_str());
  {
    JobQueue q(path);
    const std::uint64_t id = q.enqueue("interrupted", 5);
    q.find(id)->state = JobState::kRunning;
    q.persist();
  }
  JobQueue q2(path);
  ASSERT_EQ(q2.load(), 1u);
  EXPECT_EQ(q2.find(1)->state, JobState::kQueued);
  std::remove(path.c_str());
}

TEST(JobQueue, TornTailKeepsValidPrefix) {
  const std::string path = temp_file("queue_torn");
  std::remove(path.c_str());
  {
    JobQueue q(path);
    q.enqueue("job-one", 5);
    q.enqueue("job-two", 5);
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  // Truncate at every byte offset: load must never throw and must keep a
  // valid prefix of records (possibly zero).
  for (std::uintmax_t cut = 0; cut < size; cut += 7) {
    {
      JobQueue q(path);
      q.enqueue("job-one", 5);
      q.enqueue("job-two", 5);
    }
    std::filesystem::resize_file(path, cut, ec);
    ASSERT_FALSE(ec);
    JobQueue q2(path);
    const std::size_t kept = q2.load();
    EXPECT_LE(kept, 2u);
    for (const Job& j : q2.jobs())
      EXPECT_TRUE(j.scenario == "job-one" || j.scenario == "job-two");
  }
  std::remove(path.c_str());
}

TEST(JobQueue, ForeignFileRefusedLoudly) {
  const std::string path = temp_file("queue_foreign");
  {
    std::ofstream out(path);
    out << "this is not a queue file\n";
  }
  JobQueue q(path);
  EXPECT_THROW(q.load(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(JobQueue, EnqueueRollsBackWhenPersistFails) {
  const std::string path = temp_file("queue_rollback");
  std::remove(path.c_str());
  JobQueue q(path);
  util::FaultInjector::global().configure("serve.enqueue@1");
  EXPECT_THROW(q.enqueue("doomed", 5), std::exception);
  util::FaultInjector::global().disarm();
  EXPECT_TRUE(q.jobs().empty());
  // The rolled-back id is reissued, so ids stay dense and durable.
  EXPECT_EQ(q.enqueue("survivor", 5), 1u);
  std::remove(path.c_str());
}

// --- live daemon -----------------------------------------------------------

spec::ScenarioSpec serve_spec(std::size_t defects = 6) {
  spec::ScenarioSpec s;
  s.name = "serve-test";
  s.bus = soc::BusKind::kData;
  s.defect_count = defects;
  s.multi_session = false;
  s.threads = 1;
  s.workers = 2;
  s.checkpoint_every = 2;
  return s;
}

std::string reference_chars(const spec::ScenarioSpec& in) {
  spec::ScenarioSpec s = in;
  s.workers = 0;
  const auto lib = s.make_library();
  const auto sessions = s.make_sessions();
  util::CampaignStats stats;
  const sim::CampaignOptions opts = s.campaign_options(&stats);
  const std::vector<sim::Verdict> v =
      sim::run_detection_sessions(s.system, sessions, s.bus, lib, opts);
  std::string chars;
  for (const sim::Verdict verdict : v) chars.push_back(sim::to_char(verdict));
  return chars;
}

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // In-process daemon, real worker processes: point workers at the
    // built binary, not this test executable.
    ::setenv("XTEST_WORKER_BINARY", XTEST_BINARY_PATH, 1);
    queue_path_ = temp_file(std::string("srv_") +
                            ::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name());
    std::remove(queue_path_.c_str());
  }

  void TearDown() override {
    stop();
    util::FaultInjector::global().disarm();
    std::remove(queue_path_.c_str());
    // Per-job scratch (checkpoints, job scenario files).
    for (std::uint64_t id = 1; id <= 8; ++id) {
      const std::string base = queue_path_ + ".job" + std::to_string(id) +
                               ".ckpt";
      std::remove((base + ".job.scn").c_str());
      for (std::size_t k = 0; k < 8; ++k)
        std::remove((base + ".shard" + std::to_string(k)).c_str());
    }
  }

  void start(ServerOptions o = {}) {
    cancel_.store(false);
    if (::getenv("XTEST_SERVE_TEST_LOG")) o.log = &std::cerr;
    o.tcp_port = 0;
    o.queue_path = queue_path_;
    o.cancel = &cancel_;
    if (o.job_backoff_ms == 100) o.job_backoff_ms = 20;
    server_ = std::make_unique<Server>(std::move(o));
    server_->start();
    port_ = server_->bound_port();
    thread_ = std::thread([this] { pending_ = server_->run(); });
  }

  void stop() {
    cancel_.store(true);
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  ClientOptions client_options() const {
    ClientOptions o;
    o.tcp_port = port_;
    o.reconnect_backoff_ms = 20;
    return o;
  }

  std::string queue_path_;
  std::atomic<bool> cancel_{false};
  std::unique_ptr<Server> server_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  std::size_t pending_ = SIZE_MAX;
};

TEST_F(ServeFixture, SubmitStreamsBitwiseEqualVerdicts) {
  const spec::ScenarioSpec s = serve_spec();
  const std::string reference = reference_chars(s);
  start();
  Client c(client_options());
  const std::uint64_t job = c.submit(spec::serialize_scenario(s), 5);
  EXPECT_EQ(job, 1u);
  const JobResult r = c.wait(job);
  EXPECT_FALSE(r.failed);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.verdicts, reference);
  EXPECT_FALSE(r.stats_json.empty());
  stop();
  EXPECT_EQ(pending_, 0u);
}

TEST_F(ServeFixture, ReplayAfterReconnectMatches) {
  const spec::ScenarioSpec s = serve_spec();
  const std::string reference = reference_chars(s);
  start();
  std::uint64_t job = 0;
  {
    Client first(client_options());
    job = first.submit(spec::serialize_scenario(s), 5);
    const JobResult r = first.wait(job);
    EXPECT_EQ(r.verdicts, reference);
  }  // first client gone
  // A brand-new client resumes from seq 0 and gets the identical stream.
  Client second(client_options());
  const JobResult replay = second.wait(job);
  EXPECT_EQ(replay.verdicts, reference);
  EXPECT_EQ(replay.exit_code, 0);
}

TEST_F(ServeFixture, MalformedBytesDropOnlyThatConnection) {
  start();
  int fd = util::connect_tcp(port_);
  ASSERT_GE(fd, 0);
  const std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
  ASSERT_TRUE(util::write_full(fd, garbage.data(), garbage.size()));
  // The daemon answers with a kError frame and closes; read to EOF.
  char buf[4096];
  while (util::retry_eintr([&] { return ::read(fd, buf, sizeof buf); }) > 0) {
  }
  util::close_fd(fd);
  // The daemon is alive and well for the next client.
  Client c(client_options());
  EXPECT_NO_THROW(c.status());
  EXPECT_GE(server_->stats().frames_rejected, 1u);
}

TEST_F(ServeFixture, OversizedFrameRejectedWithoutCrash) {
  start();
  int fd = util::connect_tcp(port_);
  ASSERT_GE(fd, 0);
  std::string header;
  header.append(kMagic, sizeof kMagic);
  header.push_back(char(kProtocolVersion));
  header.push_back(char(static_cast<std::uint8_t>(FrameType::kSubmit)));
  header.push_back('\0');
  header.push_back('\0');
  put_u32(header, 1);
  put_u32(header, kMaxPayload + 1);
  ASSERT_TRUE(util::write_full(fd, header.data(), header.size()));
  char buf[4096];
  while (util::retry_eintr([&] { return ::read(fd, buf, sizeof buf); }) > 0) {
  }
  util::close_fd(fd);
  Client c(client_options());
  EXPECT_NO_THROW(c.status());
}

TEST_F(ServeFixture, SubmitRetransmitIsDedupedPerConnection) {
  const spec::ScenarioSpec s = serve_spec(4);
  start();
  int fd = util::connect_tcp(port_);
  ASSERT_GE(fd, 0);
  Frame submit;
  submit.type = FrameType::kSubmit;
  submit.seq = 11;
  submit.payload.push_back(char(5));
  submit.payload += spec::serialize_scenario(s);
  const std::string bytes = encode_frame(submit);
  // The "ack was lost" path: the client sends the same submit twice.
  ASSERT_TRUE(util::write_full(fd, bytes.data(), bytes.size()));
  ASSERT_TRUE(util::write_full(fd, bytes.data(), bytes.size()));
  FrameDecoder dec;
  std::vector<Frame> acks;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (acks.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    char buf[4096];
    const ssize_t n =
        util::retry_eintr([&] { return ::read(fd, buf, sizeof buf); });
    if (n <= 0) break;
    ASSERT_TRUE(dec.feed(buf, static_cast<std::size_t>(n)));
    while (auto f = dec.next())
      if (f->type == FrameType::kSubmitAck) acks.push_back(*f);
  }
  util::close_fd(fd);
  ASSERT_EQ(acks.size(), 2u);
  // Both acks name the SAME job: one submit, one enqueue.
  std::size_t pos = 0;
  std::uint32_t echo0 = 0, echo1 = 0;
  std::uint64_t job0 = 0, job1 = 0;
  ASSERT_TRUE(get_u32(acks[0].payload, pos, echo0));
  ASSERT_TRUE(get_u64(acks[0].payload, pos, job0));
  pos = 0;
  ASSERT_TRUE(get_u32(acks[1].payload, pos, echo1));
  ASSERT_TRUE(get_u64(acks[1].payload, pos, job1));
  EXPECT_EQ(echo0, 11u);
  EXPECT_EQ(echo1, 11u);
  EXPECT_EQ(job0, job1);
  Client c(client_options());
  const std::string status = c.status();
  EXPECT_EQ(status.find("job 2"), std::string::npos) << status;
}

TEST_F(ServeFixture, InvalidScenarioIsRejectedInBand) {
  start();
  Client c(client_options());
  EXPECT_THROW(c.submit("definitely = not\na = scenario", 5),
               std::runtime_error);
  // The daemon survives the rejection.
  EXPECT_NO_THROW(c.status());
}

TEST_F(ServeFixture, EnqueueFaultRejectsSubmitAndRollsBack) {
  start();
  Client c(client_options());
  util::FaultInjector::global().configure("serve.enqueue@1");
  EXPECT_THROW(c.submit(spec::serialize_scenario(serve_spec(4)), 5),
               std::runtime_error);
  util::FaultInjector::global().disarm();
  // The daemon recovers and the rolled-back id is reissued.
  const std::uint64_t job =
      c.submit(spec::serialize_scenario(serve_spec(4)), 5);
  EXPECT_EQ(job, 1u);
}

TEST_F(ServeFixture, IdleConnectionsAreReaped) {
  ServerOptions o;
  o.idle_timeout_ms = 150;
  start(std::move(o));
  int fd = util::connect_tcp(port_);
  ASSERT_GE(fd, 0);
  // Say nothing: the half-open deadline must close us.
  char buf[16];
  const ssize_t n =
      util::retry_eintr([&] { return ::read(fd, buf, sizeof buf); });
  EXPECT_LE(n, 0);
  util::close_fd(fd);
  EXPECT_GE(server_->stats().idle_reaped, 1u);
}

TEST_F(ServeFixture, DrainRequeuesRunningJobAndRestartResumes) {
  const spec::ScenarioSpec s = serve_spec(8);
  const std::string reference = reference_chars(s);
  start();
  std::uint64_t job = 0;
  {
    Client c(client_options());
    job = c.submit(spec::serialize_scenario(s), 5);
    // Watch until the job stream is live, then abandon mid-stream (the
    // client-kill shape) and drain the daemon mid-run.
    const JobResult peek =
        c.wait(job, [](const JobEvent&) { return false; });
    EXPECT_TRUE(peek.aborted);
    c.kill_connection();
  }
  stop();  // SIGTERM shape: drain, requeue the running job, persist

  // Second daemon incarnation on the same queue file.
  start();
  Client c2(client_options());
  const JobResult r = c2.wait(job);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.verdicts, reference);
  stop();
  EXPECT_EQ(pending_, 0u);
}

TEST_F(ServeFixture, StatusListsJobs) {
  const spec::ScenarioSpec s = serve_spec(4);
  start();
  Client c(client_options());
  const std::uint64_t job = c.submit(spec::serialize_scenario(s), 7);
  const std::string status = c.status();
  EXPECT_NE(status.find("job " + std::to_string(job)), std::string::npos);
  EXPECT_NE(status.find("prio=7"), std::string::npos);
}

// --- stats json hardening (parse_stats_json contract) ----------------------

TEST(StatsJson, TruncatedObjectThrowsTyped) {
  util::CampaignStats out;
  EXPECT_THROW(
      util::parse_stats_json("{\"defects\":12,\"retries\":0", out),
      util::StatsJsonError);
}

TEST(StatsJson, MalformedKnownValueThrowsTyped) {
  util::CampaignStats out;
  EXPECT_THROW(util::parse_stats_json("{\"defects\": twelve}", out),
               util::StatsJsonError);
  EXPECT_THROW(util::parse_stats_json("{\"wall_seconds\": nan}", out),
               util::StatsJsonError);
}

TEST(StatsJson, ConflictingDuplicateKeyThrowsTyped) {
  util::CampaignStats out;
  EXPECT_THROW(
      util::parse_stats_json("{\"defects\":12,\"defects\":13}", out),
      util::StatsJsonError);
  // Agreeing duplicates are merely redundant, not damaged.
  util::CampaignStats ok;
  EXPECT_TRUE(
      util::parse_stats_json("{\"defects\":12,\"defects\":12}", ok));
  EXPECT_EQ(ok.defects_simulated, 12u);
}

TEST(StatsJson, FuzzRoundTripProperty) {
  // Property: for randomized stats, json() -> parse -> json() is a fixed
  // point on every raw counter parse_stats_json restores.
  util::Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    util::CampaignStats st;
    st.defects_simulated = rng.below(1u << 20);
    st.simulated_cycles = rng.below(1u << 30);
    st.retries = rng.below(100);
    st.restored_from_checkpoint = rng.below(100);
    st.salvaged_sections = rng.below(10);
    st.dropped_slots = rng.below(1000);
    st.cache_hits = rng.below(1u << 20);
    st.cache_misses = rng.below(1u << 20);
    st.gold_reuses = rng.below(1000);
    st.batch_screened = rng.below(1000);
    st.batched_transitions = rng.below(1u << 20);
    util::CampaignStats back;
    ASSERT_TRUE(util::parse_stats_json(st.json("fuzz"), back));
    EXPECT_EQ(back.defects_simulated, st.defects_simulated);
    EXPECT_EQ(back.simulated_cycles, st.simulated_cycles);
    EXPECT_EQ(back.retries, st.retries);
    EXPECT_EQ(back.restored_from_checkpoint, st.restored_from_checkpoint);
    EXPECT_EQ(back.salvaged_sections, st.salvaged_sections);
    EXPECT_EQ(back.dropped_slots, st.dropped_slots);
    EXPECT_EQ(back.cache_hits, st.cache_hits);
    EXPECT_EQ(back.cache_misses, st.cache_misses);
    EXPECT_EQ(back.gold_reuses, st.gold_reuses);
    EXPECT_EQ(back.batch_screened, st.batch_screened);
    EXPECT_EQ(back.batched_transitions, st.batched_transitions);
  }
}

}  // namespace
}  // namespace xtest::serve
