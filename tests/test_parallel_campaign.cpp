// Serial-vs-parallel equivalence for the campaign engine.
//
// The contract under test: every campaign entry point returns *bitwise
// identical* results for any thread count, because defects are statically
// partitioned, every worker owns a private soc::System, and verdicts are
// written by defect index.  threads == 1 is the exact serial path, so
// comparing it against threads in {2, 4, 8} proves the parallel engine
// changes nothing but wall-clock time.

#include "sim/campaign.h"

#include <gtest/gtest.h>

#include "hwbist/bist.h"
#include "hwbist/random_patterns.h"
#include "soc/control.h"
#include "util/parallel.h"

namespace xtest::sim {
namespace {

constexpr std::uint64_t kSeed = 20010618;
const unsigned kThreadCounts[] = {2, 4, 8};

util::ParallelConfig serial() { return {1}; }

soc::BusKind all_buses[] = {soc::BusKind::kAddress, soc::BusKind::kData,
                            soc::BusKind::kControl};

TEST(ParallelCampaign, RunDetectionMatchesSerialOnEveryBus) {
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (soc::BusKind bus : all_buses) {
    const auto lib = make_defect_library(cfg, bus, 24, kSeed);
    const auto gold =
        run_detection(cfg, prog.program, bus, lib, 16, serial());
    for (unsigned t : kThreadCounts) {
      const auto par =
          run_detection(cfg, prog.program, bus, lib, 16, {t});
      EXPECT_EQ(gold, par) << "bus " << soc::to_string(bus) << " threads "
                           << t;
    }
  }
}

TEST(ParallelCampaign, RunDetectionSessionsMatchesSerialOnEveryBus) {
  const soc::SystemConfig cfg;
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  for (soc::BusKind bus : all_buses) {
    const auto lib = make_defect_library(cfg, bus, 12, kSeed);
    const auto gold =
        run_detection_sessions(cfg, sessions, bus, lib, 16, serial());
    for (unsigned t : kThreadCounts) {
      const auto par =
          run_detection_sessions(cfg, sessions, bus, lib, 16, {t});
      EXPECT_EQ(gold, par) << "bus " << soc::to_string(bus) << " threads "
                           << t;
    }
  }
}

TEST(ParallelCampaign, PerLineCoverageMatchesSerial) {
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 10, kSeed);
  const PerLineCoverage gold = per_line_coverage(
      cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{}, 16,
      serial());
  for (unsigned t : kThreadCounts) {
    const PerLineCoverage par = per_line_coverage(
        cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{}, 16, {t});
    // Coverage fractions are ratios of per-defect verdict vectors; bitwise
    // identical verdicts mean exactly equal doubles, no tolerance needed.
    EXPECT_EQ(gold.individual, par.individual) << "threads " << t;
    EXPECT_EQ(gold.cumulative, par.cumulative) << "threads " << t;
    EXPECT_EQ(gold.tests_placed, par.tests_placed) << "threads " << t;
    EXPECT_EQ(gold.overall, par.overall) << "threads " << t;
    EXPECT_EQ(gold.library_size, par.library_size) << "threads " << t;
  }
}

TEST(ParallelCampaign, HwBistLibraryRunsMatchSerial) {
  const soc::SystemConfig cfg;
  const soc::System sys(cfg);
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 40, kSeed);

  const hwbist::HardwareBist bist(cpu::kDataBits, true);
  const auto bist_gold = bist.run_library(sys.nominal_data_network(),
                                          sys.data_model(), lib, serial());
  const hwbist::RandomPatternBist rnd(cpu::kDataBits, 64, kSeed);
  const auto rnd_gold = rnd.run_library(sys.nominal_data_network(),
                                        sys.data_model(), lib, serial());
  for (unsigned t : kThreadCounts) {
    EXPECT_EQ(bist_gold, bist.run_library(sys.nominal_data_network(),
                                          sys.data_model(), lib, {t}));
    EXPECT_EQ(rnd_gold, rnd.run_library(sys.nominal_data_network(),
                                        sys.data_model(), lib, {t}));
  }
}

TEST(ParallelCampaign, RepeatedRunsWithSameSeedAreIdentical) {
  // Determinism property: the whole pipeline (library generation from a
  // seed through parallel detection) is a pure function of its inputs.
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (unsigned t : {1u, 4u}) {
    const auto lib_a =
        make_defect_library(cfg, soc::BusKind::kAddress, 20, kSeed);
    const auto lib_b =
        make_defect_library(cfg, soc::BusKind::kAddress, 20, kSeed);
    const auto det_a = run_detection(cfg, prog.program,
                                     soc::BusKind::kAddress, lib_a, 16, {t});
    const auto det_b = run_detection(cfg, prog.program,
                                     soc::BusKind::kAddress, lib_b, 16, {t});
    EXPECT_EQ(det_a, det_b) << "threads " << t;
  }
}

TEST(ParallelCampaign, StatsAreDeterministicAcrossThreadCounts) {
  // defects_simulated and simulated_cycles are pure functions of the
  // campaign inputs; wall_seconds and threads are the only host-dependent
  // fields.
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 16, kSeed);

  util::CampaignStats serial_stats;
  run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, 16, serial(),
                &serial_stats);
  EXPECT_EQ(serial_stats.defects_simulated, lib.size());
  EXPECT_EQ(serial_stats.threads, 1u);
  EXPECT_GT(serial_stats.simulated_cycles, 0u);
  EXPECT_GE(serial_stats.wall_seconds, 0.0);

  for (unsigned t : kThreadCounts) {
    util::CampaignStats s;
    run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, 16, {t},
                  &s);
    EXPECT_EQ(s.defects_simulated, serial_stats.defects_simulated);
    EXPECT_EQ(s.simulated_cycles, serial_stats.simulated_cycles)
        << "threads " << t;
    EXPECT_EQ(s.threads, t);
  }
}

TEST(ParallelCampaign, StatsAccumulateAcrossSessions) {
  const soc::SystemConfig cfg;
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 8, kSeed);
  std::size_t live_sessions = 0;
  for (const auto& s : sessions) live_sessions += !s.program.tests.empty();

  util::CampaignStats stats;
  run_detection_sessions(cfg, sessions, soc::BusKind::kAddress, lib, 16,
                         serial(), &stats);
  EXPECT_EQ(stats.defects_simulated, live_sessions * lib.size());
}

}  // namespace
}  // namespace xtest::sim
