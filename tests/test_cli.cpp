#include "tools/cli.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace xtest::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Cli, UsageOnUnknownCommand) {
  const CliRun r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, GenerateSummary) {
  const CliRun r = run_cli({"generate"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("| session |"), std::string::npos);
  EXPECT_NE(r.out.find("| 0"), std::string::npos);
}

TEST(Cli, GenerateWritesImages) {
  const std::string prefix = temp_path("prog");
  const CliRun r = run_cli({"generate", "--out", prefix});
  EXPECT_EQ(r.code, 0);
  std::ifstream img(prefix + "0.img");
  EXPECT_TRUE(img.good());
}

TEST(Cli, AssembleRunRoundTrip) {
  const std::string src = temp_path("t.s");
  const std::string img = temp_path("t.img");
  {
    std::ofstream f(src);
    f << "        .org 0x010\n"
         "        lda v\n"
         "        hlt\n"
         "        .org 0x80\n"
         "v:      .byte 0x42\n";
  }
  const CliRun a = run_cli({"assemble", src, "--out", img});
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_NE(a.out.find("entry 0x010"), std::string::npos);

  const CliRun r = run_cli({"run", img, "--entry", "0x010"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("reason=hlt"), std::string::npos);
  EXPECT_NE(r.out.find("acc=0x42"), std::string::npos);
}

TEST(Cli, RunWithTraceShowsWaveforms) {
  const std::string src = temp_path("t2.s");
  const std::string img = temp_path("t2.img");
  {
    std::ofstream f(src);
    f << "nop\nhlt\n";
  }
  ASSERT_EQ(run_cli({"assemble", src, "--out", img}).code, 0);
  const CliRun r = run_cli({"run", img, "--entry", "0", "--trace"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("addr[11]"), std::string::npos);
  EXPECT_NE(r.out.find("data[ 7]"), std::string::npos);
}

TEST(Cli, DisasmListsImage) {
  const std::string src = temp_path("t3.s");
  const std::string img = temp_path("t3.img");
  {
    std::ofstream f(src);
    f << "add 0xf07\nhlt\n";
  }
  ASSERT_EQ(run_cli({"assemble", src, "--out", img}).code, 0);
  const CliRun r = run_cli({"disasm", img});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("add 0xf07"), std::string::npos);
}

TEST(Cli, CampaignReportsCoverage) {
  const CliRun r = run_cli({"campaign", "--bus", "data", "--defects", "20",
                            "--seed", "7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("bus=data defects=20 coverage=100.0%"),
            std::string::npos);
}

TEST(Cli, CampaignReportsHotPathCounters) {
  // A seed no other in-process test uses: the process-wide run memo
  // (sim::DefectRunCache) would otherwise replay a colliding campaign's
  // defects wholesale and this cold run would see no cache traffic.
  const CliRun r = run_cli({"campaign", "--bus", "data", "--defects", "10",
                            "--seed", "7031", "--stats-json"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Human-readable counters line: the memo must have seen real traffic.
  EXPECT_NE(r.out.find("cache_hits="), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("cache_hits=0 "), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("cache_hit_rate="), std::string::npos);
  EXPECT_NE(r.out.find("gold_reuses="), std::string::npos);
  EXPECT_NE(r.out.find("run_reuses="), std::string::npos);
  // --stats-json appends the machine-readable record.
  EXPECT_NE(r.out.find("{\"campaign\":\"campaign\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cache_hits\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"gold_reuses\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"run_reuses\":"), std::string::npos);
}

TEST(Cli, CampaignThreadsFlagKeepsCoverageIdentical) {
  const CliRun serial = run_cli({"campaign", "--bus", "addr", "--defects",
                                 "15", "--seed", "7", "--threads", "1"});
  const CliRun par = run_cli({"campaign", "--bus", "addr", "--defects", "15",
                              "--seed", "7", "--threads", "4"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(par.code, 0) << par.err;
  // The coverage line (everything before the stats line) must be bitwise
  // identical at any thread count; only the stats line may differ.
  EXPECT_EQ(serial.out.substr(0, serial.out.find('\n')),
            par.out.substr(0, par.out.find('\n')));
  EXPECT_NE(serial.out.find("threads=1 "), std::string::npos);
  EXPECT_NE(par.out.find("threads=4 "), std::string::npos);
}

TEST(Cli, CampaignBatchLineAndNoBatchKeepVerdictsIdentical) {
  const CliRun on = run_cli({"campaign", "--bus", "data", "--defects", "12",
                             "--seed", "7", "--batch-size", "5"});
  ASSERT_EQ(on.code, 0) << on.err;
  EXPECT_NE(on.out.find("batch=5 screened="), std::string::npos) << on.out;
  EXPECT_NE(on.out.find("batch_fill="), std::string::npos) << on.out;

  const CliRun off = run_cli({"campaign", "--bus", "data", "--defects", "12",
                              "--seed", "7", "--no-batch"});
  ASSERT_EQ(off.code, 0) << off.err;
  EXPECT_NE(off.out.find("batch=off"), std::string::npos) << off.out;

  // The verdict lines (coverage + breakdown) are bitwise identical with
  // the screen on or off; only the perf counters may differ.
  const auto verdict_lines = [](const std::string& s) {
    const std::size_t first = s.find('\n');
    return s.substr(0, s.find('\n', first + 1));
  };
  EXPECT_EQ(verdict_lines(on.out), verdict_lines(off.out));
}

TEST(Cli, BatchSizeZeroOrNegativeIsAUsageErrorNamingTheFlag) {
  // "-3" would silently wrap through stoull into 2^64-3 without the
  // explicit sign check -- both campaign and chaos must reject it before
  // any work starts.
  for (const char* cmd : {"campaign", "chaos"}) {
    for (const char* bad : {"0", "-3", "-1"}) {
      const CliRun r = run_cli({cmd, "--batch-size", bad});
      EXPECT_EQ(r.code, kExitUsage) << cmd << " --batch-size " << bad;
      EXPECT_NE(r.err.find("--batch-size"), std::string::npos) << r.err;
      EXPECT_NE(r.err.find(bad), std::string::npos) << r.err;
    }
  }
}

TEST(Cli, ErrorsAreReported) {
  // I/O failures and usage mistakes get distinct exit codes.
  EXPECT_EQ(run_cli({"assemble", "/nonexistent.s"}).code, kExitIo);
  EXPECT_EQ(run_cli({"run", "/nonexistent.img", "--entry", "0"}).code,
            kExitIo);
  EXPECT_EQ(run_cli({"campaign", "--bus", "bogus"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"campaign", "--defects", "lots"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"run", "x.img"}).code, kExitUsage);  // missing --entry
  const CliRun r = run_cli({"run"});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, CorruptImageIsSimulationError) {
  const std::string img = temp_path("corrupt.img");
  {
    std::ofstream f(img);
    f << "0x010: zz\n";
  }
  const CliRun r = run_cli({"run", img, "--entry", "0x010"});
  EXPECT_EQ(r.code, kExitSim);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
  EXPECT_NE(r.err.find("line 1"), std::string::npos);
}

TEST(Cli, BadFaultSpecIsAUsageError) {
  const CliRun r = run_cli({"campaign", "--bus", "data", "--defects", "4",
                            "--faults", "site@@"});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("fault spec"), std::string::npos) << r.err;
}

TEST(Cli, FaultsFlagInjectsAndTheRetryPathAbsorbsIt) {
  const CliRun r = run_cli({"campaign", "--bus", "data", "--defects", "10",
                            "--seed", "7", "--threads", "1", "--faults",
                            "parallel.item@3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("retries=1 "), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("sim_errors=0\n"), std::string::npos) << r.out;
}

TEST(Cli, InterruptFlagExitsWithCode5AndResumeCompletes) {
  const std::string ckpt = temp_path("cli_interrupt.ckpt");
  std::remove(ckpt.c_str());
  const std::vector<std::string> args = {"campaign",  "--bus",
                                         "data",      "--defects",
                                         "10",        "--seed",
                                         "7",         "--checkpoint",
                                         ckpt};
  interrupt_flag().store(true);
  const CliRun stopped = run_cli(args);
  interrupt_flag().store(false);
  EXPECT_EQ(stopped.code, kExitInterrupted);
  EXPECT_NE(stopped.err.find("interrupted"), std::string::npos)
      << stopped.err;
  EXPECT_NE(stopped.err.find("resume"), std::string::npos) << stopped.err;

  const CliRun resumed = run_cli(args);
  ASSERT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("coverage=100.0%"), std::string::npos)
      << resumed.out;
  std::remove(ckpt.c_str());
}

TEST(Cli, ChaosSoakSmokeRunPasses) {
  const CliRun r = run_cli({"chaos", "--bus", "data", "--defects", "6",
                            "--cycles", "3", "--threads", "1", "--seed",
                            "7"});
  ASSERT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("verdicts identical"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("chaos soak passed"), std::string::npos) << r.out;
}

TEST(Cli, ChaosSoakExercisesTheBatchedPathAtANonDivisorBatchSize) {
  // The kill/crash/resume chains run with a 7-lane batch that does not
  // divide the 6-defect library; the uninterrupted reference inside chaos
  // runs at the default batch size, so "verdicts identical" doubles as a
  // batched-vs-batched differential check across batch sizes.
  const CliRun r = run_cli({"chaos", "--bus", "data", "--defects", "6",
                            "--cycles", "3", "--threads", "1", "--seed",
                            "7", "--batch-size", "7"});
  ASSERT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("verdicts identical"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("chaos soak passed"), std::string::npos) << r.out;
}

TEST(Cli, CampaignCheckpointResumesAndReportsRestored) {
  const std::string ckpt = temp_path("cli_campaign.ckpt");
  std::remove(ckpt.c_str());
  const std::vector<std::string> args = {"campaign",  "--bus",
                                         "data",      "--defects",
                                         "12",        "--seed",
                                         "7",         "--checkpoint",
                                         ckpt};
  const CliRun first = run_cli(args);
  ASSERT_EQ(first.code, 0) << first.err;
  EXPECT_NE(first.out.find("restored=0 "), std::string::npos);

  // Second invocation finds every verdict already on disk.
  const CliRun second = run_cli(args);
  ASSERT_EQ(second.code, 0) << second.err;
  EXPECT_EQ(second.out.find("restored=0 "), std::string::npos);
  EXPECT_EQ(first.out.substr(0, first.out.find('\n')),
            second.out.substr(0, second.out.find('\n')));
  std::remove(ckpt.c_str());
}

std::string line_starting_with(const std::string& text,
                               const std::string& prefix) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(prefix, 0) == 0) return line;
  return {};
}

TEST(Cli, ShardFlagRunsOneSliceOfTheLibrary) {
  // Shard 1 of 3 over 12 defects owns indices 1, 4, 7, 10.
  const CliRun r = run_cli({"campaign", "--bus", "data", "--defects", "12",
                            "--seed", "7", "--threads", "1", "--shard",
                            "1/3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("shard=1/3 owned=4"), std::string::npos) << r.out;
}

TEST(Cli, BadShardSpecsAreUsageErrors) {
  // Shard index out of range, missing '/', and --workers + --shard
  // (a worker IS a shard) are all rejected before anything runs.
  EXPECT_EQ(run_cli({"campaign", "--shard", "3/2"}).code, 2);
  EXPECT_EQ(run_cli({"campaign", "--shard", "2"}).code, 2);
  EXPECT_EQ(run_cli({"campaign", "--workers", "2", "--shard", "0/2"}).code, 2);
}

TEST(Cli, SupervisedWorkersMatchTheSerialVerdictLines) {
  // run() here executes in the test binary, so point the supervisor's
  // worker processes at the real xtest executable.
  ASSERT_EQ(setenv("XTEST_WORKER_BINARY", XTEST_BINARY_PATH, 1), 0);
  const std::vector<std::string> serial_args = {
      "campaign", "--bus", "data",      "--defects", "10",
      "--seed",   "7",     "--threads", "1"};
  std::vector<std::string> supervised_args = serial_args;
  supervised_args.insert(supervised_args.end(), {"--workers", "2"});
  const CliRun serial = run_cli(serial_args);
  const CliRun supervised = run_cli(supervised_args);
  unsetenv("XTEST_WORKER_BINARY");

  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(supervised.code, 0) << supervised.err << supervised.out;
  // Coverage and verdict breakdown are bitwise identical to the serial
  // run; the supervised summary adds its worker accounting line.
  EXPECT_EQ(line_starting_with(supervised.out, "bus="),
            line_starting_with(serial.out, "bus="));
  EXPECT_EQ(line_starting_with(supervised.out, "detected="),
            line_starting_with(serial.out, "detected="));
  EXPECT_NE(supervised.out.find("workers=2 "), std::string::npos)
      << supervised.out;
  EXPECT_NE(supervised.out.find("quarantined=0"), std::string::npos)
      << supervised.out;
}

TEST(Cli, ScenarioFlagMatchesDefaultCampaignAtEveryThreadCount) {
  // `--scenario paper-baseline` must be bitwise identical to the
  // hard-coded default path: same verdicts, signatures, and coverage.
  for (const char* threads : {"1", "4"}) {
    const CliRun plain = run_cli({"campaign", "--bus", "data", "--defects",
                                  "12", "--seed", "7", "--threads", threads});
    const CliRun spec =
        run_cli({"campaign", "--scenario", "paper-baseline", "--bus", "data",
                 "--defects", "12", "--seed", "7", "--threads", threads});
    ASSERT_EQ(plain.code, 0) << plain.err;
    ASSERT_EQ(spec.code, 0) << spec.err;
    EXPECT_EQ(plain.out.substr(0, plain.out.find('\n')),
              spec.out.substr(0, spec.out.find('\n')))
        << "threads=" << threads;
  }
}

TEST(Cli, ScenariosSubcommandListsEveryBuiltin) {
  const CliRun r = run_cli({"scenarios"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* name :
       {"paper-baseline", "wide-bus-32", "slow-tester", "control-bus",
        "bist-compare", "stress-1k-defects"})
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
}

TEST(Cli, ScenariosDumpRoundTripsThroughAFile) {
  const CliRun dump = run_cli({"scenarios", "--dump", "slow-tester"});
  ASSERT_EQ(dump.code, 0) << dump.err;
  EXPECT_NE(dump.out.find("name = slow-tester"), std::string::npos);
  EXPECT_NE(dump.out.find("system.clock_period_scale = 3"),
            std::string::npos);

  const std::string path = temp_path("slow.scn");
  {
    std::ofstream f(path);
    f << dump.out;
  }
  const CliRun redump = run_cli({"scenarios", "--dump", path});
  ASSERT_EQ(redump.code, 0) << redump.err;
  EXPECT_EQ(dump.out, redump.out);

  const CliRun ran = run_cli({"campaign", "--scenario", path, "--bus",
                              "data", "--defects", "6", "--seed", "7"});
  ASSERT_EQ(ran.code, 0) << ran.err;
  EXPECT_NE(ran.out.find("bus=data defects=6"), std::string::npos) << ran.out;
}

TEST(Cli, UnknownExecTierIsAUsageErrorNamingTheFlag) {
  for (const char* cmd : {"campaign", "chaos", "submit"}) {
    std::vector<std::string> args = {cmd, "--exec-tier", "turbo"};
    if (std::string(cmd) == "submit")  // tier validation precedes connect
      args.insert(args.end(), {"--socket", temp_path("no-daemon.sock")});
    const CliRun r = run_cli(args);
    EXPECT_EQ(r.code, kExitUsage) << cmd;
    EXPECT_NE(r.err.find("--exec-tier"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("turbo"), std::string::npos) << r.err;
  }
}

TEST(Cli, ExecTierFlagSelectsTheTierAndKeepsVerdictsIdentical) {
  const std::vector<std::string> base = {"campaign", "--bus",  "data",
                                         "--defects", "8",     "--seed",
                                         "11",        "--threads", "1"};
  const auto with = [&](const char* tier) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--exec-tier", tier});
    return run_cli(args);
  };
  const CliRun dec = with("decoded");
  const CliRun ref = with("reference");
  ASSERT_EQ(dec.code, 0) << dec.err;
  ASSERT_EQ(ref.code, 0) << ref.err;
  EXPECT_NE(dec.out.find("tier=decoded"), std::string::npos) << dec.out;
  EXPECT_NE(ref.out.find("tier=reference"), std::string::npos) << ref.out;
  const auto line = [](const std::string& s, const char* prefix) {
    const std::size_t p = s.find(prefix);
    EXPECT_NE(p, std::string::npos) << s;
    return s.substr(p, s.find('\n', p) - p);
  };
  EXPECT_EQ(line(dec.out, "detected="), line(ref.out, "detected="));
}

TEST(Cli, ScenariosDumpRoundTripsTheExecTierKey) {
  const CliRun dump = run_cli({"scenarios", "--dump", "paper-baseline"});
  ASSERT_EQ(dump.code, 0) << dump.err;
  const std::string key = "system.exec_tier = decoded";
  ASSERT_NE(dump.out.find(key), std::string::npos) << dump.out;

  // Overriding the key in a scenario file survives a dump round-trip.
  std::string text = dump.out;
  text.replace(text.find(key), key.size(), "system.exec_tier = reference");
  const std::string path = temp_path("tier.scn");
  {
    std::ofstream f(path);
    f << text;
  }
  const CliRun redump = run_cli({"scenarios", "--dump", path});
  ASSERT_EQ(redump.code, 0) << redump.err;
  EXPECT_NE(redump.out.find("system.exec_tier = reference"),
            std::string::npos)
      << redump.out;

  // An unknown tier value is a usage error naming the key and its line.
  text = dump.out;
  text.replace(text.find(key), key.size(), "system.exec_tier = warp");
  {
    std::ofstream f(path);
    f << text;
  }
  const CliRun bad = run_cli({"campaign", "--scenario", path});
  EXPECT_EQ(bad.code, kExitUsage);
  EXPECT_NE(bad.err.find("exec_tier"), std::string::npos) << bad.err;
}

TEST(Cli, ScenariosDumpRoundTripsOnlineAndElectricalKeys) {
  const CliRun dump = run_cli({"scenarios", "--dump", "online-baseline"});
  ASSERT_EQ(dump.code, 0) << dump.err;
  ASSERT_NE(dump.out.find("online.enabled = true"), std::string::npos)
      << dump.out;
  ASSERT_NE(dump.out.find("online.slice_cycles = 512"), std::string::npos)
      << dump.out;
  ASSERT_NE(dump.out.find("system.electrical = full-swing"),
            std::string::npos)
      << dump.out;

  // Overriding the electrical backend and the slice budget in a scenario
  // file survives a dump round-trip.
  std::string text = dump.out;
  const std::string slice_key = "online.slice_cycles = 512";
  text.replace(text.find(slice_key), slice_key.size(),
               "online.slice_cycles = 96");
  const std::string elec_key = "system.electrical = full-swing";
  text.replace(text.find(elec_key), elec_key.size(),
               "system.electrical = low-swing");
  const std::string path = temp_path("online.scn");
  {
    std::ofstream f(path);
    f << text;
  }
  const CliRun redump = run_cli({"scenarios", "--dump", path});
  ASSERT_EQ(redump.code, 0) << redump.err;
  EXPECT_NE(redump.out.find("online.slice_cycles = 96"), std::string::npos)
      << redump.out;
  EXPECT_NE(redump.out.find("system.electrical = low-swing"),
            std::string::npos)
      << redump.out;

  // The low-swing built-in dumps its backend too.
  const CliRun low = run_cli({"scenarios", "--dump", "low-swing-bus"});
  ASSERT_EQ(low.code, 0) << low.err;
  EXPECT_NE(low.out.find("system.electrical = low-swing"),
            std::string::npos)
      << low.out;
}

TEST(Cli, UnknownElectricalBackendIsAUsageErrorNamingTheKey) {
  const CliRun dump = run_cli({"scenarios", "--dump", "paper-baseline"});
  ASSERT_EQ(dump.code, 0) << dump.err;
  std::string text = dump.out;
  const std::string key = "system.electrical = full-swing";
  ASSERT_NE(text.find(key), std::string::npos) << text;
  text.replace(text.find(key), key.size(),
               "system.electrical = half-swing");
  const std::string path = temp_path("badswing.scn");
  {
    std::ofstream f(path);
    f << text;
  }
  const CliRun bad = run_cli({"campaign", "--scenario", path});
  EXPECT_EQ(bad.code, kExitUsage);
  EXPECT_NE(bad.err.find("system.electrical"), std::string::npos) << bad.err;
  EXPECT_NE(bad.err.find("full-swing"), std::string::npos) << bad.err;
}

TEST(Cli, BadOnlineValueIsAUsageErrorNamingTheKey) {
  const CliRun dump = run_cli({"scenarios", "--dump", "online-baseline"});
  ASSERT_EQ(dump.code, 0) << dump.err;
  std::string text = dump.out;
  const std::string key = "online.deadline_cycles = 1024";
  ASSERT_NE(text.find(key), std::string::npos) << text;
  text.replace(text.find(key), key.size(), "online.deadline_cycles = soon");
  const std::string path = temp_path("badonline.scn");
  {
    std::ofstream f(path);
    f << text;
  }
  const CliRun bad = run_cli({"campaign", "--scenario", path});
  EXPECT_EQ(bad.code, kExitUsage);
  EXPECT_NE(bad.err.find("online.deadline_cycles"), std::string::npos)
      << bad.err;
}

TEST(Cli, OnlineCampaignReportsLatencyAndInterference) {
  const CliRun r = run_cli({"campaign", "--scenario", "online-baseline",
                            "--defects", "8", "--stats-json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("online gold: rounds="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("online latency: samples="), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"online_detection_latency_cycles\":"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"online_rounds\":"), std::string::npos) << r.out;
}

TEST(Cli, UnknownScenarioNameIsAnIoError) {
  const CliRun r = run_cli({"campaign", "--scenario", "no-such-scenario"});
  EXPECT_EQ(r.code, kExitIo);
  EXPECT_NE(r.err.find("cannot open scenario"), std::string::npos) << r.err;
}

TEST(Cli, MalformedScenarioFileIsAUsageErrorNamingTheLine) {
  const std::string path = temp_path("bad.scn");
  {
    std::ofstream f(path);
    f << "# comment\n"
         "bus = addr\n"
         "defects = lots\n";
  }
  const CliRun r = run_cli({"campaign", "--scenario", path});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("line 3"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("defects"), std::string::npos) << r.err;
}

TEST(Cli, UnknownFlagIsAUsageError) {
  const CliRun r = run_cli({"campaign", "--wibble"});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("unknown flag '--wibble'"), std::string::npos)
      << r.err;
}

TEST(Cli, UsageIsGeneratedFromTheFlagTable) {
  // usage() and the parser consume the same table, so every flag the
  // parser accepts must appear in the usage text (the drift the old
  // hand-maintained usage string allowed).
  const CliRun r = run_cli({"frobnicate"});
  for (const char* flag :
       {"--scenario", "--bus", "--defects", "--seed", "--threads",
        "--checkpoint", "--no-retry", "--faults", "--defect-deadline-ms",
        "--batch-size", "--no-batch", "--stats-json", "--entry", "--trace",
        "--max-cycles", "--cycles", "--dump", "--out"})
    EXPECT_NE(r.err.find(flag), std::string::npos) << flag;
  EXPECT_NE(r.err.find("paper-baseline"), std::string::npos);
}

TEST(Cli, NegativeHeartbeatFdIsAUsageErrorNamingTheFlag) {
  // stoull would wrap "-1" into a huge descriptor; the CLI must reject the
  // sign up front instead of failing later with EBADF.
  const CliRun r = run_cli({"campaign", "--defects", "4", "--heartbeat-fd",
                            "-1"});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("--heartbeat-fd"), std::string::npos) << r.err;
}

TEST(Cli, ClosedHeartbeatFdIsAUsageErrorNamingTheFlag) {
  // Descriptor 973 is valid syntax but not open in this process.
  const CliRun r = run_cli({"campaign", "--defects", "4", "--heartbeat-fd",
                            "973"});
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.err.find("--heartbeat-fd: descriptor 973 is not open"),
            std::string::npos)
      << r.err;
}

TEST(Cli, ServeRequiresExactlyOneEndpointAndAQueue) {
  const CliRun neither = run_cli({"serve", "--queue", temp_path("q1")});
  EXPECT_EQ(neither.code, kExitUsage);
  EXPECT_NE(neither.err.find("--socket"), std::string::npos) << neither.err;

  const CliRun both = run_cli({"serve", "--socket", temp_path("s.sock"),
                               "--port", "1", "--queue", temp_path("q2")});
  EXPECT_EQ(both.code, kExitUsage);

  const CliRun no_queue = run_cli({"serve", "--socket", temp_path("s.sock")});
  EXPECT_EQ(no_queue.code, kExitUsage);
  EXPECT_NE(no_queue.err.find("--queue"), std::string::npos) << no_queue.err;
}

TEST(Cli, SubmitRequiresAnEndpointAndAValidPriority) {
  const CliRun no_endpoint = run_cli({"submit"});
  EXPECT_EQ(no_endpoint.code, kExitUsage);

  const CliRun bad_priority = run_cli({"submit", "--port", "1", "--priority",
                                       "12"});
  EXPECT_EQ(bad_priority.code, kExitUsage);
  EXPECT_NE(bad_priority.err.find("--priority"), std::string::npos)
      << bad_priority.err;

  const CliRun negative = run_cli({"submit", "--port", "1", "--priority",
                                   "-3"});
  EXPECT_EQ(negative.code, kExitUsage);
}

TEST(Cli, RunAcceptsAScenarioForTheSystemConfig) {
  const std::string src = temp_path("scn_run.s");
  const std::string img = temp_path("scn_run.img");
  {
    std::ofstream f(src);
    f << "        lda v\n"
         "        hlt\n"
         "        .org 0x80\n"
         "v:      .byte 0x21\n";
  }
  ASSERT_EQ(run_cli({"assemble", src, "--out", img}).code, 0);
  const CliRun r = run_cli(
      {"run", img, "--entry", "0", "--scenario", "slow-tester"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("acc=0x21"), std::string::npos) << r.out;
}

}  // namespace
}  // namespace xtest::cli
