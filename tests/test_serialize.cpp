#include "sim/serialize.h"

#include <gtest/gtest.h>

#include "sim/campaign.h"

namespace xtest::sim {
namespace {

TEST(Serialize, ImageRoundTrip) {
  cpu::MemoryImage img;
  img.set(0x000, 0xFF);
  img.set(0x010, 0x2F);
  img.set(0xFFF, 0x01);
  const std::string text = image_to_text(img);
  const cpu::MemoryImage back = image_from_text(text);
  EXPECT_EQ(back.defined_count(), 3u);
  EXPECT_EQ(back.at(0x000), 0xFF);
  EXPECT_EQ(back.at(0x010), 0x2F);
  EXPECT_EQ(back.at(0xFFF), 0x01);
  EXPECT_FALSE(back.defined(0x011));
}

TEST(Serialize, ImageTextFormat) {
  cpu::MemoryImage img;
  img.set(0x010, 0x2F);
  EXPECT_EQ(image_to_text(img), "0x010: 2f\n");
}

TEST(Serialize, ImageRejectsGarbage) {
  EXPECT_THROW(image_from_text("not a line\n"), std::runtime_error);
  EXPECT_THROW(image_from_text("0x1000: 00\n"), std::runtime_error);
  EXPECT_THROW(image_from_text("0x010: 1ff\n"), std::runtime_error);
}

TEST(Serialize, GeneratedProgramRoundTrips) {
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const cpu::MemoryImage back =
      image_from_text(image_to_text(gen.program.image));
  EXPECT_EQ(back.raw(), gen.program.image.raw());
  EXPECT_EQ(back.defined_count(), gen.program.image.defined_count());
}

TEST(Serialize, LibraryRoundTrip) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kAddress, 15, 3);
  const std::string csv = library_to_csv(lib, 12);
  const LoadedLibrary back = library_from_csv(csv);
  ASSERT_EQ(back.defects.size(), lib.size());
  EXPECT_DOUBLE_EQ(back.config.cth_fF, lib.config().cth_fF);
  EXPECT_EQ(back.config.seed, lib.config().seed);
  for (std::size_t k = 0; k < lib.size(); ++k)
    for (unsigned i = 0; i < 12; ++i)
      for (unsigned j = i + 1; j < 12; ++j)
        EXPECT_NEAR(back.defects[k].factor(i, j), lib[k].factor(i, j), 1e-9);
}

TEST(Serialize, LoadedLibraryBehavesIdentically) {
  // Detection verdicts computed from a reloaded library match the
  // original -- the archival property a tester flow needs.
  const soc::SystemConfig cfg;
  const soc::System sys(cfg);
  const auto lib = make_defect_library(cfg, soc::BusKind::kAddress, 10, 5);
  const LoadedLibrary back = library_from_csv(library_to_csv(lib, 12));
  for (std::size_t k = 0; k < lib.size(); ++k) {
    const auto a = lib[k].apply(sys.nominal_address_network());
    const auto b = back.defects[k].apply(sys.nominal_address_network());
    for (unsigned i = 0; i < 12; ++i)
      EXPECT_NEAR(a.net_coupling(i), b.net_coupling(i), 1e-6);
  }
}

TEST(Serialize, LibraryRejectsMalformedCsv) {
  EXPECT_THROW(library_from_csv(""), std::runtime_error);
  EXPECT_THROW(library_from_csv("12,50,700,2,1\n1.0,2.0\n"),
               std::runtime_error);
}

std::string tiny_csv(const std::string& cell) {
  // width 2 -> exactly one coupling pair per row.
  return "2,50,700,2,1\n1.0\n" + cell + "\n";
}

TEST(Serialize, LibraryRejectsNonFiniteAndNegativeFactors) {
  for (const char* bad : {"nan", "inf", "-inf", "-1.0"}) {
    try {
      library_from_csv(tiny_csv(bad));
      FAIL() << "accepted factor '" << bad << "'";
    } catch (const std::runtime_error& e) {
      // The message must name the offending row (row 3: second defect).
      EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Serialize, LibraryRejectsUnparsableCellNamingRow) {
  try {
    library_from_csv(tiny_csv("0.5x"));
    FAIL() << "accepted trailing garbage";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("0.5x"), std::string::npos);
  }
}

TEST(Serialize, LibraryRejectsRowCountMismatch) {
  EXPECT_THROW(library_from_csv("2,50,700,3\n1.0\n1.0\n"),
               std::runtime_error);  // corrupt header (missing seed)
  EXPECT_THROW(library_from_csv("2,50,700,3,1\n1.0\n1.0\n"),
               std::runtime_error);  // promises 3 rows, has 2
}

TEST(Serialize, LibraryRejectsCorruptHeaderCalibration) {
  EXPECT_THROW(library_from_csv("1,50,700,0,1\n"), std::runtime_error);
  EXPECT_THROW(library_from_csv("2,nan,700,0,1\n"), std::runtime_error);
  EXPECT_THROW(library_from_csv("2,50,-700,0,1\n"), std::runtime_error);
  EXPECT_THROW(library_from_csv("2,50,0,0,1\n"), std::runtime_error);
}

TEST(Serialize, ImageErrorsNameTheLine) {
  try {
    image_from_text("0x010: 2f\n0x1000: 00\n");
    FAIL() << "accepted out-of-range address";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace xtest::sim
