#include "sim/campaign.h"

#include <gtest/gtest.h>

#include "sim/verify.h"

namespace xtest::sim {
namespace {

// Small libraries keep the suite fast; the benches run the paper-size 1000.
constexpr std::size_t kLib = 60;
constexpr std::uint64_t kSeed = 20010618;

TEST(Campaign, LibraryMatchesSystemCalibration) {
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, kLib, kSeed);
  const soc::System sys(cfg);
  EXPECT_EQ(lib.size(), kLib);
  EXPECT_DOUBLE_EQ(lib.config().cth_fF, sys.address_cth());
}

TEST(Campaign, FullProgramSetDetectsAllAddressDefects) {
  // The paper's headline: "the defect coverage of the test program is 100%
  // on both address and data busses".
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, kLib, kSeed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto det =
      run_detection_sessions(cfg, sessions, soc::BusKind::kAddress, lib);
  EXPECT_DOUBLE_EQ(coverage(det), 1.0);
}

TEST(Campaign, FullProgramSetDetectsAllDataDefects) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, kLib, kSeed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto det =
      run_detection_sessions(cfg, sessions, soc::BusKind::kData, lib);
  EXPECT_DOUBLE_EQ(coverage(det), 1.0);
}

TEST(Campaign, PerLineCoverageShapeMatchesFig11) {
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, kLib, kSeed);
  const PerLineCoverage cov = per_line_coverage(
      cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{});

  ASSERT_EQ(cov.individual.size(), 12u);
  // Outermost lines: no library defect reaches them (Fig. 11: lines 1 and
  // 12 have no defect coverage).
  EXPECT_EQ(cov.individual.front(), 0.0);
  EXPECT_EQ(cov.individual.back(), 0.0);
  // Center beats the near-edges.
  const double center = cov.individual[5] + cov.individual[6];
  const double edges = cov.individual[1] + cov.individual[10];
  EXPECT_GT(center, edges);
  // Cumulative coverage is monotone and reaches 100%.
  for (std::size_t i = 1; i < cov.cumulative.size(); ++i)
    EXPECT_GE(cov.cumulative[i], cov.cumulative[i - 1]);
  EXPECT_DOUBLE_EQ(cov.cumulative.back(), 1.0);
  EXPECT_DOUBLE_EQ(cov.overall, 1.0);
  EXPECT_EQ(cov.library_size, kLib);
}

TEST(Campaign, PerLineTestsMostlyPlaced) {
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 10, kSeed);
  const PerLineCoverage cov = per_line_coverage(
      cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{});
  std::size_t total = 0;
  for (std::size_t n : cov.tests_placed) total += n;
  // 4 MAFs per line, 12 lines; at most a few conflict away entirely.
  EXPECT_GE(total, 45u);
}

TEST(Campaign, DetectionIsDeterministic) {
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 20, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto a = run_detection(cfg, prog.program, soc::BusKind::kAddress, lib);
  const auto b = run_detection(cfg, prog.program, soc::BusKind::kAddress, lib);
  EXPECT_EQ(a, b);
}

TEST(Campaign, SingleSessionWeakerThanUnion) {
  // Missing (conflicting) tests can only lose coverage.
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, kLib, kSeed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto single = run_detection(cfg, sessions[0].program,
                                    soc::BusKind::kAddress, lib);
  const auto all =
      run_detection_sessions(cfg, sessions, soc::BusKind::kAddress, lib);
  for (std::size_t i = 0; i < lib.size(); ++i)
    EXPECT_LE(is_detected(single[i]), is_detected(all[i])) << i;
}

TEST(Campaign, CoverageHelper) {
  EXPECT_DOUBLE_EQ(coverage(std::vector<Verdict>{}), 0.0);
  EXPECT_DOUBLE_EQ(coverage({Verdict::kDetected, Verdict::kUndetected,
                             Verdict::kDetectedByTimeout,
                             Verdict::kSimError}),
                   0.5);
  EXPECT_DOUBLE_EQ(coverage({Verdict::kDetected}), 1.0);
  // Legacy flat-bool overload still answers the same question.
  EXPECT_DOUBLE_EQ(coverage(std::vector<bool>{true, false}), 0.5);
}

TEST(Campaign, MaskingAwareWholeProgramStillDetects) {
  // The defect is excited many times during the program (fault masking is
  // modelled, Section 5); detection must survive all the incidental
  // activations.  Check with the strongest defect in the library.
  const soc::SystemConfig cfg;
  const auto lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 10, kSeed);
  const soc::System sys(cfg);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto det =
      run_detection_sessions(cfg, sessions, soc::BusKind::kAddress, lib);
  for (const Verdict v : det) EXPECT_TRUE(is_detected(v)) << to_string(v);
}

}  // namespace
}  // namespace xtest::sim
