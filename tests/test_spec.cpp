// The scenario layer's contract: the text format round-trips exactly,
// malformed input fails with precise line numbers, defaults are the paper
// baseline, built-ins are valid, and the materializers reproduce the
// hand-built configuration paths they replaced.

#include "spec/scenario.h"

#include <gtest/gtest.h>

#include <fstream>

#include "util/rng.h"

namespace xtest::spec {
namespace {

// --- defaults --------------------------------------------------------------

TEST(ScenarioSpec, EmptyTextParsesToDefaults) {
  EXPECT_EQ(parse_scenario(""), ScenarioSpec{});
  EXPECT_EQ(parse_scenario("# only a comment\n\n   \n"), ScenarioSpec{});
}

TEST(ScenarioSpec, DefaultsAreThePaperBaseline) {
  // A default-constructed spec IS the configuration the consumers used to
  // hard-code: default SystemConfig, default GeneratorConfig, address bus,
  // 200 defects, the DAC-week seed.
  const ScenarioSpec s;
  EXPECT_EQ(s.system, soc::SystemConfig{});
  EXPECT_EQ(s.program, sbst::GeneratorConfig{});
  EXPECT_EQ(s.bus, soc::BusKind::kAddress);
  EXPECT_EQ(s.defect_count, 200u);
  EXPECT_EQ(s.seed, 20010618ull);
  EXPECT_DOUBLE_EQ(s.sigma_pct, 50.0);
  EXPECT_EQ(s.cycle_factor, 16ull);
}

TEST(ScenarioSpec, PartialSpecOnlyOverridesNamedKeys) {
  const ScenarioSpec s = parse_scenario(
      "bus = data\n"
      "defects = 42\n"
      "system.clock_period_scale = 2.5\n");
  EXPECT_EQ(s.bus, soc::BusKind::kData);
  EXPECT_EQ(s.defect_count, 42u);
  EXPECT_DOUBLE_EQ(s.system.clock_period_scale, 2.5);
  // Everything else stays at the default.
  EXPECT_EQ(s.seed, ScenarioSpec{}.seed);
  EXPECT_EQ(s.program, ScenarioSpec{}.program);
}

// --- round-trip ------------------------------------------------------------

ScenarioSpec random_spec(util::Rng& rng) {
  ScenarioSpec s;
  s.name = "rand-" + std::to_string(rng.below(1u << 20));
  s.description = "randomized spec " + std::to_string(rng.below(1000));
  s.bus = static_cast<soc::BusKind>(rng.below(3));
  s.defect_count = 1 + rng.below(5000);
  s.seed = rng.below(~0ull - 1);
  s.sigma_pct = 1.0 + 100.0 * rng.uniform();
  s.system.cth_ratio = 0.5 + 3.0 * rng.uniform();
  s.system.clock_period_scale = 0.5 + 4.0 * rng.uniform();
  s.system.fast_receive = rng.below(2) == 0;
  s.system.transition_cache = rng.below(2) == 0;
  for (auto* g : {&s.system.address_geometry, &s.system.data_geometry,
                  &s.system.control_geometry}) {
    g->width = static_cast<unsigned>(2 + rng.below(30));
    g->wire_length_um = 100.0 + 5000.0 * rng.uniform();
    g->coupling_fF_per_um = 0.01 + rng.uniform();
    g->ground_fF_per_um = 0.01 + rng.uniform();
    g->distance_decay_exponent = 1.0 + 2.0 * rng.uniform();
    g->driver_resistance_ohm = 50.0 + 1000.0 * rng.uniform();
  }
  s.program.include_address_bus = rng.below(2) == 0;
  s.program.include_data_bus =
      !s.program.include_address_bus || rng.below(2) == 0;
  s.program.order = static_cast<sbst::PlacementOrder>(rng.below(4));
  s.program.data_both_directions = rng.below(2) == 0;
  s.program.group_size = static_cast<unsigned>(1 + rng.below(8));
  s.program.usable_limit = static_cast<cpu::Addr>(1 + rng.below(4096));
  s.multi_session = rng.below(2) == 0;
  s.max_sessions = static_cast<int>(1 + rng.below(8));
  s.cycle_factor = 1 + rng.below(64);
  s.threads = static_cast<unsigned>(rng.below(16));
  s.retry_errors = rng.below(2) == 0;
  s.reuse_gold = rng.below(2) == 0;
  s.checkpoint_every = 1 + rng.below(256);
  s.defect_deadline_ms = rng.below(100000);
  s.gold_cache_capacity = 1 + rng.below(1024);
  s.compare_bist = rng.below(2) == 0;
  s.workers = rng.below(5);
  s.system.electrical.backend =
      static_cast<xtalk::ElectricalBackend>(rng.below(2));
  s.system.electrical.swing_ratio = 0.1 + 0.9 * rng.uniform();
  s.system.electrical.restorer_ratio = 0.05 + 0.9 * rng.uniform();
  s.online.enabled = rng.below(2) == 0;
  s.online.slice_cycles = 1 + rng.below(4096);
  s.online.workload_cycles = 1 + rng.below(4096);
  s.online.deadline_cycles = 1 + rng.below(8192);
  return s;
}

TEST(ScenarioSpec, SerializeParseRoundTripsExactly) {
  util::Rng rng(20010618);
  for (int i = 0; i < 200; ++i) {
    const ScenarioSpec s = random_spec(rng);
    const std::string text = serialize_scenario(s);
    const ScenarioSpec back = parse_scenario(text);
    ASSERT_EQ(back, s) << "iteration " << i << "\n" << text;
    // Idempotence: a second trip changes nothing.
    ASSERT_EQ(serialize_scenario(back), text) << "iteration " << i;
  }
}

TEST(ScenarioSpec, DoubleValuesRoundTripAtFullPrecision) {
  ScenarioSpec s;
  s.sigma_pct = 0.1 + 0.2;  // 0.30000000000000004
  s.system.cth_ratio = 1.0 / 3.0;
  s.system.address_geometry.wire_length_um = 1e-7;
  const ScenarioSpec back = parse_scenario(serialize_scenario(s));
  EXPECT_EQ(back.sigma_pct, s.sigma_pct);
  EXPECT_EQ(back.system.cth_ratio, s.system.cth_ratio);
  EXPECT_EQ(back.system.address_geometry.wire_length_um,
            s.system.address_geometry.wire_length_um);
}

// --- malformed input -------------------------------------------------------

int parse_error_line(const std::string& text) {
  try {
    parse_scenario(text);
  } catch (const SpecParseError& e) {
    return e.line;
  }
  return -1;
}

TEST(ScenarioSpec, UnknownKeyNamesItsLine) {
  EXPECT_EQ(parse_error_line("bus = addr\nbogus_key = 7\n"), 2);
  try {
    parse_scenario("# c\n\nnot_a_key = 1\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_NE(std::string(e.what()).find("unknown key 'not_a_key'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ScenarioSpec, BadValueNamesKeyAndLine) {
  EXPECT_EQ(parse_error_line("defects = lots\n"), 1);
  EXPECT_EQ(parse_error_line("bus = addr\nseed = 12x\n"), 2);
  EXPECT_EQ(parse_error_line("sigma_pct = NaN%\n"), 1);
  EXPECT_EQ(parse_error_line("campaign.retry_errors = yes\n"), 1);
  EXPECT_EQ(parse_error_line("bus = pci\n"), 1);
  EXPECT_EQ(parse_error_line("program.order = alphabetical\n"), 1);
  EXPECT_EQ(parse_error_line("system.electrical = half-swing\n"), 1);
  EXPECT_EQ(parse_error_line("online.enabled = maybe\n"), 1);
  try {
    parse_scenario("system.electrical = half-swing\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    // The error names the key AND spells out the valid values.
    EXPECT_NE(std::string(e.what()).find("system.electrical"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("full-swing"), std::string::npos);
  }
}

TEST(ScenarioSpec, OnlineAndElectricalKeysRoundTrip) {
  const ScenarioSpec s = parse_scenario(
      "online.enabled = true\n"
      "online.slice_cycles = 96\n"
      "online.workload_cycles = 48\n"
      "online.deadline_cycles = 4000\n"
      "system.electrical = low-swing\n"
      "system.swing_ratio = 0.5\n"
      "system.restorer_ratio = 0.25\n");
  EXPECT_TRUE(s.online.enabled);
  EXPECT_EQ(s.online.slice_cycles, 96u);
  EXPECT_EQ(s.online.workload_cycles, 48u);
  EXPECT_EQ(s.online.deadline_cycles, 4000u);
  EXPECT_EQ(s.system.electrical.backend, xtalk::ElectricalBackend::kLowSwing);
  EXPECT_DOUBLE_EQ(s.system.electrical.swing_ratio, 0.5);
  EXPECT_DOUBLE_EQ(s.system.electrical.restorer_ratio, 0.25);
  EXPECT_EQ(parse_scenario(serialize_scenario(s)), s);
}

TEST(ScenarioSpec, OnlineValidationRules) {
  {
    ScenarioSpec s;
    s.online.enabled = true;
    EXPECT_NO_THROW(s.validate());
    s.workers = 2;
    EXPECT_THROW(s.validate(), SpecParseError);
  }
  {
    ScenarioSpec s;
    s.online.enabled = true;
    s.shard_count = 2;
    EXPECT_THROW(s.validate(), SpecParseError);
  }
  {
    ScenarioSpec s;
    s.online.enabled = true;
    s.compare_bist = true;
    EXPECT_THROW(s.validate(), SpecParseError);
  }
  {
    ScenarioSpec s;
    s.online.enabled = true;
    s.online.slice_cycles = 0;
    EXPECT_THROW(s.validate(), SpecParseError);
  }
  {
    // Disabled online mode does not police its cycle knobs.
    ScenarioSpec s;
    s.online.slice_cycles = 0;
    EXPECT_NO_THROW(s.validate());
  }
  {
    ScenarioSpec s;
    s.system.electrical.swing_ratio = 1.5;
    EXPECT_THROW(s.validate(), SpecParseError);
    s.system.electrical.swing_ratio = 0.4;
    s.system.electrical.restorer_ratio = 1.0;
    EXPECT_THROW(s.validate(), SpecParseError);
  }
}

TEST(ScenarioSpec, DuplicateKeyIsAnError) {
  EXPECT_EQ(parse_error_line("defects = 5\nseed = 1\ndefects = 6\n"), 3);
  try {
    parse_scenario("defects = 5\ndefects = 6\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key 'defects'"),
              std::string::npos);
  }
}

TEST(ScenarioSpec, MissingEqualsIsAnError) {
  EXPECT_EQ(parse_error_line("defects 5\n"), 1);
  EXPECT_EQ(parse_error_line("= 5\n"), 1);
}

// --- built-ins -------------------------------------------------------------

TEST(ScenarioSpec, BuiltinsResolveRoundTripAndValidate) {
  ASSERT_GE(builtin_scenario_names().size(), 8u);
  for (const std::string& name : builtin_scenario_names()) {
    const std::optional<ScenarioSpec> s = find_builtin(name);
    ASSERT_TRUE(s.has_value()) << name;
    EXPECT_EQ(s->name, name);
    EXPECT_FALSE(s->description.empty()) << name;
    EXPECT_NO_THROW(s->validate()) << name;
    EXPECT_EQ(parse_scenario(serialize_scenario(*s)), *s) << name;
  }
  EXPECT_FALSE(find_builtin("no-such-scenario").has_value());
  EXPECT_THROW(builtin_scenario("no-such-scenario"), SpecParseError);
}

TEST(ScenarioSpec, PaperBaselineIsTheDefaultConfiguration) {
  const ScenarioSpec s = builtin_scenario("paper-baseline");
  ScenarioSpec d;
  d.name = s.name;
  d.description = s.description;
  EXPECT_EQ(s, d);
}

TEST(ScenarioSpec, LoadScenarioPrefersBuiltinsThenFiles) {
  EXPECT_EQ(load_scenario("slow-tester").system.clock_period_scale, 3.0);
  EXPECT_THROW(load_scenario("/nonexistent/path.scn"), SpecIoError);

  const std::string path = std::string(::testing::TempDir()) + "/t.scn";
  {
    std::ofstream f(path);
    f << "name = from-file\nbus = ctrl\n";
  }
  const ScenarioSpec s = load_scenario(path);
  EXPECT_EQ(s.name, "from-file");
  EXPECT_EQ(s.bus, soc::BusKind::kControl);
}

// --- validation ------------------------------------------------------------

TEST(ScenarioSpec, ValidateRejectsNonArchitecturalWidths) {
  ScenarioSpec s;
  s.system.address_geometry.width = 32;
  EXPECT_THROW(s.validate(), SpecParseError);
  s = ScenarioSpec{};
  s.system.data_geometry.width = 16;
  EXPECT_THROW(s.validate(), SpecParseError);
  s = ScenarioSpec{};
  s.defect_count = 0;
  EXPECT_THROW(s.validate(), SpecParseError);
  s = ScenarioSpec{};
  s.program.include_address_bus = false;
  s.program.include_data_bus = false;
  EXPECT_THROW(s.validate(), SpecParseError);
  EXPECT_NO_THROW(ScenarioSpec{}.validate());
}

// --- materializers reproduce the hand-built paths --------------------------

TEST(ScenarioSpec, MaterializersMatchHandBuiltConfiguration) {
  ScenarioSpec s;
  s.bus = soc::BusKind::kData;
  s.defect_count = 8;
  s.seed = 7;

  const xtalk::DefectLibrary via_spec = s.make_library();
  const xtalk::DefectLibrary by_hand =
      sim::make_defect_library(soc::SystemConfig{}, soc::BusKind::kData, 8, 7);
  ASSERT_EQ(via_spec.size(), by_hand.size());
  EXPECT_EQ(via_spec.config().seed, by_hand.config().seed);
  EXPECT_EQ(via_spec.config().cth_fF, by_hand.config().cth_fF);

  const auto spec_sessions = s.make_sessions();
  const auto hand_sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  ASSERT_EQ(spec_sessions.size(), hand_sessions.size());
  for (std::size_t i = 0; i < spec_sessions.size(); ++i)
    EXPECT_EQ(spec_sessions[i].program.tests.size(),
              hand_sessions[i].program.tests.size());

  util::CampaignStats stats;
  const std::vector<sim::Verdict> via =
      sim::run_detection_sessions(s.system, spec_sessions, s.bus, via_spec,
                                  s.campaign_options(&stats));
  const std::vector<sim::Verdict> hand = sim::run_detection_sessions(
      soc::SystemConfig{}, hand_sessions, soc::BusKind::kData, by_hand, 16,
      {1});
  EXPECT_EQ(via, hand);
}

TEST(ScenarioSpec, SingleSessionScenarioGeneratesOneProgram) {
  ScenarioSpec s;
  s.multi_session = false;
  EXPECT_EQ(s.make_sessions().size(), 1u);
}

TEST(ScenarioSpec, CampaignOptionsCarryTheSpecFields) {
  ScenarioSpec s;
  s.cycle_factor = 9;
  s.threads = 3;
  s.retry_errors = false;
  s.reuse_gold = false;
  s.checkpoint_every = 5;
  s.defect_deadline_ms = 1234;
  util::CampaignStats stats;
  const sim::CampaignOptions o = s.campaign_options(&stats);
  EXPECT_EQ(o.cycle_factor, 9ull);
  EXPECT_EQ(o.parallel.threads, 3u);
  EXPECT_FALSE(o.retry_errors);
  EXPECT_FALSE(o.reuse_gold);
  EXPECT_EQ(o.checkpoint_every, 5u);
  EXPECT_EQ(o.defect_deadline_ms, 1234ull);
  EXPECT_EQ(o.stats, &stats);
}

}  // namespace
}  // namespace xtest::spec
