#include "sbst/layout.h"

#include <gtest/gtest.h>

namespace xtest::sbst {
namespace {

using cpu::Addr;

TEST(Layout, StartsAllFree) {
  LayoutAllocator a;
  for (unsigned x = 0; x < cpu::kMemWords; x += 97)
    EXPECT_EQ(a.use(static_cast<Addr>(x)), CellUse::kFree);
  EXPECT_EQ(a.used_bytes(), 0u);
}

TEST(Layout, UsableLimitForbidsHighCells) {
  LayoutAllocator a(0xC00);
  EXPECT_EQ(a.use(0xBFF), CellUse::kFree);
  EXPECT_EQ(a.use(0xC00), CellUse::kForbidden);
  EXPECT_EQ(a.use(0xFFF), CellUse::kForbidden);
  LayoutAllocator::Txn txn(a);
  EXPECT_FALSE(txn.set_code(0xC00, 1));
}

TEST(Layout, TxnCommitAppliesStagedCells) {
  LayoutAllocator a;
  LayoutAllocator::Txn txn(a);
  txn.set_code(0x100, 0x12);
  txn.require_operand(0x200, 0x34);
  txn.claim_response(0x300);
  ASSERT_TRUE(txn.ok());
  txn.commit();
  EXPECT_EQ(a.use(0x100), CellUse::kCode);
  EXPECT_EQ(a.value(0x100), 0x12);
  EXPECT_EQ(a.use(0x200), CellUse::kOperand);
  EXPECT_EQ(a.use(0x300), CellUse::kResponse);
  EXPECT_EQ(a.used_bytes(), 3u);
}

TEST(Layout, DroppedTxnLeavesNoTrace) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x100, 0x12);
    // never committed
  }
  EXPECT_EQ(a.use(0x100), CellUse::kFree);
}

TEST(Layout, ConflictPoisonsTxn) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x100, 1);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_TRUE(txn.set_code(0x101, 2));
  EXPECT_FALSE(txn.set_code(0x100, 3));  // already code
  EXPECT_FALSE(txn.ok());
}

TEST(Layout, TxnSeesItsOwnStaging) {
  LayoutAllocator a;
  LayoutAllocator::Txn txn(a);
  txn.set_code(0x100, 1);
  EXPECT_EQ(txn.use(0x100), CellUse::kCode);
  EXPECT_EQ(txn.value(0x100), 1);
  // Double placement within one txn is a conflict.
  EXPECT_FALSE(txn.set_code(0x100, 2));
}

TEST(Layout, RequireOperandSharesEqualValues) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.require_operand(0x200, 0x42);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_TRUE(txn.require_operand(0x200, 0x42));  // same value: shared
  EXPECT_TRUE(txn.ok());
  LayoutAllocator::Txn txn2(a);
  EXPECT_FALSE(txn2.require_operand(0x200, 0x43));  // different: conflict
}

TEST(Layout, RequireOperandAcceptsMatchingCode) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x150, 0x07);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_TRUE(txn.require_operand(0x150, 0x07));
  LayoutAllocator::Txn txn2(a);
  EXPECT_FALSE(txn2.require_operand(0x150, 0x08));
}

TEST(Layout, RequireDiffersClaimsFreeCellWithPreferred) {
  LayoutAllocator a;
  LayoutAllocator::Txn txn(a);
  std::uint8_t got = 0;
  EXPECT_TRUE(txn.require_differs(0x200, 0x01, 0xFE, &got));
  EXPECT_EQ(got, 0xFE);
  txn.commit();
  EXPECT_EQ(a.value(0x200), 0xFE);
}

TEST(Layout, RequireDiffersAcceptsOccupiedDifferent) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x200, 0x33);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  std::uint8_t got = 0;
  EXPECT_TRUE(txn.require_differs(0x200, 0x01, 0xFF, &got));
  EXPECT_EQ(got, 0x33);
  LayoutAllocator::Txn txn2(a);
  EXPECT_FALSE(txn2.require_differs(0x200, 0x33, 0xFF));
}

TEST(Layout, RequireDiffersRejectsPatchCells) {
  // A patch cell's value is unknown until the chain is finalised, so the
  // conservative answer is "cannot guarantee difference".
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_patch(0x200);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_FALSE(txn.require_differs(0x200, 0x01, 0xFF));
}

TEST(Layout, PatchLifecycle) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_patch(0x100);
    txn.commit();
  }
  EXPECT_THROW(a.image(), std::logic_error);  // unpatched
  a.patch(0x100, 0x77);
  EXPECT_EQ(a.use(0x100), CellUse::kCode);
  EXPECT_EQ(a.image().at(0x100), 0x77);
  EXPECT_THROW(a.patch(0x100, 0x78), std::logic_error);  // already final
}

TEST(Layout, ClaimResponseOverwriteReusesOperands) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.require_operand(0x200, 0x42);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_TRUE(txn.claim_response_overwrite(0x200));
  txn.commit();
  EXPECT_EQ(a.use(0x200), CellUse::kResponse);
  // The image keeps the operand constant (loaded before being overwritten
  // at run time).
  EXPECT_EQ(a.image().at(0x200), 0x42);
}

TEST(Layout, ClaimResponseOverwriteRejectsCode) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x200, 1);
    txn.commit();
  }
  LayoutAllocator::Txn txn(a);
  EXPECT_FALSE(txn.claim_response_overwrite(0x200));
}

TEST(Layout, FindFreeRunFirstFit) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    for (Addr x = 0; x < 10; ++x) txn.set_code(x, 0);
    txn.commit();
  }
  const auto run = a.find_free_run(4);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(*run, 10);
}

TEST(Layout, FindFreeRunAvoidsProtectedZones) {
  LayoutAllocator a;
  a.add_protected_zone(0x000, 0x0FF);
  const auto run = a.find_free_run(4);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(*run, 0x100);
  EXPECT_TRUE(a.is_protected(0x050));
  EXPECT_FALSE(a.is_protected(0x100));
}

TEST(Layout, FindFreeRunFallsBackIntoProtectedWhenFull) {
  LayoutAllocator a;
  a.add_protected_zone(0x000, 0xFFF);  // everything protected
  const auto run = a.find_free_run(4);
  ASSERT_TRUE(run.has_value());  // fallback ignores protection
}

TEST(Layout, FindFreeCellWithOffsetScansPages) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x040, 0);  // occupy page 0, offset 0x40
    txn.commit();
  }
  const auto cell = a.find_free_cell_with_offset(0x40);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, 0x140);
  EXPECT_EQ(cpu::offset_of(*cell), 0x40);
}

TEST(Layout, FindFreeRunExhaustion) {
  LayoutAllocator a(0x004);  // only 4 usable bytes
  EXPECT_FALSE(a.find_free_run(5).has_value());
  EXPECT_TRUE(a.find_free_run(4).has_value());
}

TEST(Layout, ImageContainsExactlyUsedCells) {
  LayoutAllocator a;
  {
    LayoutAllocator::Txn txn(a);
    txn.set_code(0x100, 0xAB);
    txn.require_operand(0x200, 0xCD);
    txn.claim_response(0x300);
    txn.commit();
  }
  const cpu::MemoryImage img = a.image();
  EXPECT_EQ(img.defined_count(), 3u);
  EXPECT_EQ(img.at(0x100), 0xAB);
  EXPECT_EQ(img.at(0x200), 0xCD);
  EXPECT_EQ(img.at(0x300), 0x00);
  EXPECT_FALSE(img.defined(0x101));
}

}  // namespace
}  // namespace xtest::sbst
