#include "xtalk/maf.h"

#include <set>

#include <gtest/gtest.h>

namespace xtest::xtalk {
namespace {

using util::BusWord;

// Fig. 1 of the paper, victim Yi on an 8-bit bus.
TEST(MaTest, PositiveGlitchVectorsMatchFig1) {
  // gp: victim stable 0, aggressors rise.  Paper example (Section 4.1):
  // (00000000, 11110111) for victim = bit 3 (paper's "line 4").
  const VectorPair p = ma_test(8, {3, MafType::kPositiveGlitch,
                                   BusDirection::kCoreToCpu});
  EXPECT_EQ(p.v1, BusWord(8, 0x00));
  EXPECT_EQ(p.v2, BusWord(8, 0xF7));
}

TEST(MaTest, NegativeGlitchVectors) {
  const VectorPair p = ma_test(8, {3, MafType::kNegativeGlitch,
                                   BusDirection::kCoreToCpu});
  EXPECT_EQ(p.v1, BusWord(8, 0xFF));
  EXPECT_EQ(p.v2, BusWord(8, 0x08));
}

TEST(MaTest, RisingDelayVectorsMatchFig8) {
  // Paper Fig. 8: (01111111, 10000000) is the rising-delay test for the
  // MSB ("bus line 8").
  const VectorPair p = ma_test(8, {7, MafType::kRisingDelay,
                                   BusDirection::kCoreToCpu});
  EXPECT_EQ(p.v1, BusWord(8, 0x7F));
  EXPECT_EQ(p.v2, BusWord(8, 0x80));
}

TEST(MaTest, FallingDelayVectorsMatchSection421) {
  // Paper Section 4.2.1: (0000:00010000, 1111:11101111) is a falling-delay
  // test (victim = bit 4 of the 12-bit address bus).
  const VectorPair p = ma_test(12, {4, MafType::kFallingDelay,
                                    BusDirection::kCpuToCore});
  EXPECT_EQ(p.v1, BusWord(12, 0x010));
  EXPECT_EQ(p.v2, BusWord(12, 0xFEF));
}

TEST(MaTest, GlitchKeepsVictimStableDelayTogglesIt) {
  for (unsigned v = 0; v < 12; ++v) {
    for (MafType t : kAllMafTypes) {
      const VectorPair p = ma_test(12, {v, t, BusDirection::kCpuToCore});
      if (is_glitch(t)) {
        EXPECT_EQ(p.v1.bit(v), p.v2.bit(v)) << to_string(t) << "@" << v;
      } else {
        EXPECT_NE(p.v1.bit(v), p.v2.bit(v)) << to_string(t) << "@" << v;
      }
      // All aggressors toggle.
      for (unsigned a = 0; a < 12; ++a) {
        if (a != v) {
          EXPECT_NE(p.v1.bit(a), p.v2.bit(a));
        }
      }
    }
  }
}

TEST(FaultyV2, GlitchFlipsVictim) {
  const MafFault gp{2, MafType::kPositiveGlitch, BusDirection::kCoreToCpu};
  const VectorPair p = ma_test(8, gp);
  const BusWord bad = faulty_v2(gp, p);
  EXPECT_EQ(bad, p.v2.with_bit(2, true));
  EXPECT_EQ(bad.bits(), 0xFFu);
}

TEST(FaultyV2, DelayKeepsOldVictimValue) {
  const MafFault dr{5, MafType::kRisingDelay, BusDirection::kCoreToCpu};
  const VectorPair p = ma_test(8, dr);
  EXPECT_EQ(faulty_v2(dr, p).bit(5), p.v1.bit(5));
  EXPECT_EQ(faulty_v2(dr, p).bits(), 0x00u);

  const MafFault df{5, MafType::kFallingDelay, BusDirection::kCoreToCpu};
  const VectorPair q = ma_test(8, df);
  EXPECT_EQ(faulty_v2(df, q).bits(), 0xFFu);
}

TEST(FullyExcites, MaTestExcitesItsOwnFault) {
  for (unsigned v = 0; v < 8; ++v)
    for (MafType t : kAllMafTypes) {
      const MafFault f{v, t, BusDirection::kCoreToCpu};
      EXPECT_TRUE(fully_excites(f, ma_test(8, f))) << f.label();
    }
}

TEST(FullyExcites, MaTestDoesNotExciteOtherFaults) {
  for (unsigned v = 0; v < 8; ++v)
    for (MafType t : kAllMafTypes) {
      const MafFault f{v, t, BusDirection::kCoreToCpu};
      const VectorPair p = ma_test(8, f);
      for (unsigned v2 = 0; v2 < 8; ++v2)
        for (MafType t2 : kAllMafTypes) {
          if (v2 == v && t2 == t) continue;
          const MafFault g{v2, t2, BusDirection::kCoreToCpu};
          EXPECT_FALSE(fully_excites(g, p)) << f.label() << " vs " << g.label();
        }
    }
}

// Exhaustive uniqueness property on a small bus: for each fault, the MA
// test is the *only* fully exciting pair among all 2^N x 2^N pairs.
TEST(FullyExcites, MaPairIsUniqueExhaustively) {
  const unsigned width = 4;
  for (unsigned v = 0; v < width; ++v)
    for (MafType t : kAllMafTypes) {
      const MafFault f{v, t, BusDirection::kCoreToCpu};
      const VectorPair expect = ma_test(width, f);
      int count = 0;
      for (unsigned a = 0; a < 16; ++a)
        for (unsigned b = 0; b < 16; ++b) {
          const VectorPair p{util::BusWord(width, a), util::BusWord(width, b)};
          if (fully_excites(f, p)) {
            ++count;
            EXPECT_EQ(p, expect);
          }
        }
      EXPECT_EQ(count, 1) << f.label();
    }
}

TEST(Enumerate, CountsMatchPaper) {
  // "there are 64 MAFs on the 8-bit bi-directional data bus (8 x 4 x 2)
  //  and 48 MAFs on the 12-bit address bus (12 x 4)"
  EXPECT_EQ(enumerate_mafs(8, true).size(), 64u);
  EXPECT_EQ(enumerate_mafs(12, false).size(), 48u);
}

TEST(Enumerate, AllDistinct) {
  const auto faults = enumerate_mafs(8, true);
  std::set<std::string> labels;
  for (const MafFault& f : faults) labels.insert(f.label());
  EXPECT_EQ(labels.size(), faults.size());
}

TEST(Enumerate, UnidirectionalIsCpuToCore) {
  for (const MafFault& f : enumerate_mafs(12, false))
    EXPECT_EQ(f.direction, BusDirection::kCpuToCore);
}

TEST(Labels, HumanReadable) {
  const MafFault f{0, MafType::kPositiveGlitch, BusDirection::kCpuToCore};
  EXPECT_EQ(f.label(), "gp@1/cpu->core");  // 1-based as in the paper
  EXPECT_EQ(to_string(MafType::kFallingDelay), "df");
}

class MaTestWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaTestWidths, PairsDifferInEveryBit) {
  const unsigned w = GetParam();
  for (unsigned v = 0; v < w; ++v)
    for (MafType t : kAllMafTypes) {
      const VectorPair p = ma_test(w, {v, t, BusDirection::kCpuToCore});
      const unsigned dist = p.v1.hamming_distance(p.v2);
      // Glitches toggle all aggressors; delays toggle everything.
      EXPECT_EQ(dist, is_glitch(t) ? w - 1 : w);
    }
}

TEST_P(MaTestWidths, FourFaultsPerWire) {
  const unsigned w = GetParam();
  EXPECT_EQ(enumerate_mafs(w, false).size(), 4u * w);
  EXPECT_EQ(enumerate_mafs(w, true).size(), 8u * w);
}

INSTANTIATE_TEST_SUITE_P(Widths, MaTestWidths,
                         ::testing::Values(2u, 3u, 4u, 8u, 12u, 16u, 32u));

}  // namespace
}  // namespace xtest::xtalk
