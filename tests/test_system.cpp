#include "soc/system.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"

namespace xtest::soc {
namespace {

using cpu::Addr;

cpu::AsmResult simple_lda_program() {
  // The paper's Fig. 5 scenario: a single LDA followed by HLT.
  return cpu::assemble(R"(
        .org 0x010
        lda 0x380
        hlt
        .org 0x380
        .byte 0x5a
  )");
}

TEST(System, RunsAProgramToCompletion) {
  System sys;
  const auto prog = simple_lda_program();
  sys.load_and_reset(prog.image, prog.entry);
  const RunResult r = sys.run(1000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.reason, cpu::HaltReason::kHltInstruction);
  EXPECT_EQ(sys.processor().acc(), 0x5A);
}

TEST(System, Fig5BusTransactionSequence) {
  // Address bus: Ai, Ai+1, Ax; data bus: M[Ai], M[Ai+1], M[Ax].
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const auto prog = simple_lda_program();
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);

  const auto addr = trace.on_bus(BusKind::kAddress);
  ASSERT_GE(addr.size(), 3u);
  EXPECT_EQ(addr[0].driven.bits(), 0x010u);
  EXPECT_EQ(addr[1].driven.bits(), 0x011u);
  EXPECT_EQ(addr[2].driven.bits(), 0x380u);
  for (const auto& e : addr)
    EXPECT_EQ(e.direction, xtalk::BusDirection::kCpuToCore);

  const auto data = trace.on_bus(BusKind::kData);
  ASSERT_GE(data.size(), 3u);
  EXPECT_EQ(data[0].driven.bits(), 0x03u);  // lda byte1: opcode 0 page 3
  EXPECT_EQ(data[1].driven.bits(), 0x80u);  // offset byte
  EXPECT_EQ(data[2].driven.bits(), 0x5Au);  // operand
  EXPECT_EQ(data[2].direction, xtalk::BusDirection::kCoreToCpu);
}

TEST(System, WriteDrivesDataBusCpuToCore) {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0x200
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x200), 0x42);

  bool saw_write = false;
  for (const auto& e : trace.on_bus(BusKind::kData))
    if (e.direction == xtalk::BusDirection::kCpuToCore) {
      saw_write = true;
      EXPECT_EQ(e.driven.bits(), 0x42u);
    }
  EXPECT_TRUE(saw_write);
}

TEST(System, NominalSystemNeverCorrupts) {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const auto prog = simple_lda_program();
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  for (const auto& e : trace.events()) EXPECT_FALSE(e.corrupted);
}

TEST(System, ForcedMafCorruptsExactlyItsTransition) {
  // Force the positive-glitch MAF on data wire 1 and run a program whose
  // LDA applies exactly that MA pair: offset byte 0x00 -> data 0xFD.
  System sys;
  const auto prog = cpu::assemble(R"(
        .org 0x010
        lda 0x300
        sta 0x201
        hlt
        .org 0x300
        .byte 0xfd
  )");
  sys.set_forced_maf(ForcedMaf{
      BusKind::kData,
      {1, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCoreToCpu}});
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x201), 0xFF);  // bit 1 glitched high

  // Without the forced fault the value is clean.
  sys.set_forced_maf(std::nullopt);
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x201), 0xFD);
}

TEST(System, ForcedAddressMafRedirectsAccess) {
  // Falling-delay fault on address wire 4: accessing 0xFEF after 0x010
  // (the paper's Section 4.2.1 example) reads 0xFFF instead.
  System sys;
  const auto prog = cpu::assemble(R"(
        .org 0x00f     ; instruction at v1-1, second byte at v1 = 0x010
        lda 0xfef
        sta 0x201
        hlt
        .org 0xfef
        .byte 0x01
        .org 0xfff
        .byte 0x99
  )");
  sys.set_forced_maf(ForcedMaf{
      BusKind::kAddress,
      {4, xtalk::MafType::kFallingDelay, xtalk::BusDirection::kCpuToCore}});
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x201), 0x99);
}

TEST(System, DefectInjectionAndClear) {
  System sys;
  xtalk::RcNetwork bad = sys.nominal_address_network();
  for (unsigned j = 0; j < 12; ++j)
    if (j != 5) bad.scale_coupling(5, j, 3.0);
  sys.set_address_network(bad);
  sys.clear_defects();

  const auto prog = simple_lda_program();
  sys.load_and_reset(prog.image, prog.entry);
  const RunResult r = sys.run(1000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(sys.processor().acc(), 0x5A);
}

TEST(System, CthCalibrationConsistent) {
  System sys;
  EXPECT_GT(sys.address_cth(), sys.nominal_address_network().max_net_coupling());
  EXPECT_GT(sys.data_cth(), sys.nominal_data_network().max_net_coupling());
  EXPECT_EQ(sys.nominal_address_network().width(), 12u);
  EXPECT_EQ(sys.nominal_data_network().width(), 8u);
}

TEST(System, MmioWindowShadowsMemory) {
  System sys;
  RegisterFileDevice dev(16);
  sys.attach_mmio(0xE00, 16, &dev);
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0xe03     ; into the device
        lda 0xe03     ; read back from the device
        sta 0x201
        hlt
        .org 0x80
v:      .byte 0x77
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(dev.read(3), 0x77);
  EXPECT_EQ(sys.memory().read(0x201), 0x77);
  // The backing memory at the window is untouched.
  EXPECT_EQ(sys.memory().read(0xE03), 0x00);
}

TEST(System, RomDeviceIgnoresWrites) {
  System sys;
  RomDevice rom({0x11, 0x22, 0x33});
  sys.attach_mmio(0xE00, 3, &rom);
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0xe01
        lda 0xe01
        sta 0x201
        hlt
        .org 0x80
v:      .byte 0x77
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x201), 0x22);
}

TEST(System, TraceRecordsCycleNumbers) {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const auto prog = simple_lda_program();
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  ASSERT_FALSE(trace.events().empty());
  for (std::size_t i = 1; i < trace.events().size(); ++i)
    EXPECT_GE(trace.events()[i].cycle, trace.events()[i - 1].cycle);
  EXPECT_FALSE(trace.render().empty());
}

}  // namespace
}  // namespace xtest::soc
