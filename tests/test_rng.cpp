#include "util/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace xtest::util {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.below(1000), b.below(1000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.below(1u << 30) == b.below(1u << 30);
  EXPECT_LT(same, 3);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  // The defect distribution is Gaussian with sigma = 50% (3-sigma = 150%);
  // check the generator's sample moments.
  Rng rng(7);
  const double sigma = 0.5;
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(sigma);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), sigma, 0.01);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

}  // namespace
}  // namespace xtest::util
