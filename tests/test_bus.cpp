#include "soc/bus.h"

#include <gtest/gtest.h>

#include "xtalk/defect.h"

namespace xtest::soc {
namespace {

using util::BusWord;
using xtalk::BusGeometry;
using xtalk::CrosstalkErrorModel;
using xtalk::ErrorModelConfig;
using xtalk::RcNetwork;

TEST(TristateBus, PowersUpHoldingZero) {
  TristateBus bus(BusKind::kData, 8);
  EXPECT_EQ(bus.held(), BusWord::zeros(8));
  EXPECT_EQ(bus.width(), 8u);
  EXPECT_EQ(bus.kind(), BusKind::kData);
}

TEST(TristateBus, HoldsLastDrivenValue) {
  // Section 4.1: "When 'z' appears, we assume the bus holds the last
  // defined value before 'z'".  Idle cycles do not touch the bus, so the
  // next transfer's transition starts from the last driven word.
  TristateBus bus(BusKind::kData, 8);
  bus.transfer(BusWord(8, 0xA5), nullptr, nullptr);
  EXPECT_EQ(bus.held(), BusWord(8, 0xA5));
  bus.transfer(BusWord(8, 0x3C), nullptr, nullptr);
  EXPECT_EQ(bus.held(), BusWord(8, 0x3C));
}

TEST(TristateBus, IdealTransferReturnsDriven) {
  TristateBus bus(BusKind::kAddress, 12);
  EXPECT_EQ(bus.transfer(BusWord(12, 0xFEF), nullptr, nullptr),
            BusWord(12, 0xFEF));
}

TEST(TristateBus, ResetRestoresZero) {
  TristateBus bus(BusKind::kData, 8);
  bus.transfer(BusWord(8, 0xFF), nullptr, nullptr);
  bus.reset();
  EXPECT_EQ(bus.held(), BusWord::zeros(8));
}

TEST(TristateBus, AppliesErrorModelToTransition) {
  BusGeometry g;
  g.width = 8;
  RcNetwork nom(g);
  const double cth = xtalk::recommended_cth(nom, 1.6);
  const CrosstalkErrorModel model(ErrorModelConfig::calibrated(nom, cth));

  // Defective wire 3: blow up its couplings.
  RcNetwork bad = nom;
  for (unsigned j = 0; j < 8; ++j)
    if (j != 3) bad.scale_coupling(3, j, 2.0);
  ASSERT_GT(bad.net_coupling(3), cth);

  TristateBus bus(BusKind::kData, 8);
  // Drive v1 then v2 of the positive-glitch MA test for wire 3.
  const auto pair = xtalk::ma_test(
      8, {3, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCoreToCpu});
  bus.transfer(pair.v1, &bad, &model);
  const BusWord received = bus.transfer(pair.v2, &bad, &model);
  EXPECT_NE(received, pair.v2);
  EXPECT_TRUE(received.bit(3));
  // The wires settle: the held value is the driven word, not the glitch.
  EXPECT_EQ(bus.held(), pair.v2);
}

TEST(TristateBus, NominalNetworkIsTransparent) {
  BusGeometry g;
  g.width = 8;
  RcNetwork nom(g);
  const CrosstalkErrorModel model(ErrorModelConfig::calibrated(
      nom, xtalk::recommended_cth(nom, 1.6)));
  TristateBus bus(BusKind::kData, 8);
  for (unsigned v = 0; v < 256; v += 17) {
    const BusWord w(8, v);
    EXPECT_EQ(bus.transfer(w, &nom, &model), w);
  }
}

TEST(BusKind, Names) {
  EXPECT_EQ(to_string(BusKind::kAddress), "addr");
  EXPECT_EQ(to_string(BusKind::kData), "data");
}

}  // namespace
}  // namespace xtest::soc
