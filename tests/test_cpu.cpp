#include "cpu/cpu.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/assembler.h"

namespace xtest::cpu {
namespace {

/// Ideal bus port over a flat memory, recording every transaction.
class FlatMemoryPort : public BusPort {
 public:
  struct Tx {
    Addr addr;
    bool write;
    std::uint8_t data;
  };

  FlatMemoryPort() { mem.fill(0); }

  explicit FlatMemoryPort(const MemoryImage& image) { mem = image.raw(); }

  std::uint8_t read(Addr a) override {
    log.push_back({a, false, mem[a]});
    return mem[a];
  }
  void write(Addr a, std::uint8_t d) override {
    log.push_back({a, true, d});
    mem[a] = d;
  }
  void internal_cycle() override { ++internal; }

  std::array<std::uint8_t, kMemWords> mem{};
  std::vector<Tx> log;
  int internal = 0;
};

/// Assembles, runs until halt (or 10k cycles), returns the port+cpu state.
struct RunResult {
  FlatMemoryPort port;
  std::uint8_t acc;
  Flags flags;
  HaltReason reason;
  std::uint64_t cycles;
  Addr pc;
};

RunResult run_source(const std::string& src) {
  const AsmResult a = assemble(src);
  RunResult r{FlatMemoryPort(a.image), 0, {}, HaltReason::kRunning, 0, 0};
  Cpu cpu(r.port);
  cpu.reset(a.entry);
  cpu.run(10000);
  r.acc = cpu.acc();
  r.flags = cpu.flags();
  r.reason = cpu.halt_reason();
  r.cycles = cpu.cycles();
  r.pc = cpu.pc();
  return r;
}

TEST(Cpu, LdaLoadsAndSetsFlags) {
  auto r = run_source(R"(
        lda v
        hlt
        .org 0x80
v:      .byte 0x90
  )");
  EXPECT_EQ(r.acc, 0x90);
  EXPECT_FALSE(r.flags.z);
  EXPECT_TRUE(r.flags.n);
  EXPECT_EQ(r.reason, HaltReason::kHltInstruction);
}

TEST(Cpu, StaStores) {
  auto r = run_source(R"(
        lda v
        sta 0x200
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  EXPECT_EQ(r.port.mem[0x200], 0x42);
}

TEST(Cpu, AddSetsCarryAndOverflow) {
  auto r = run_source(R"(
        lda a
        add b
        hlt
        .org 0x80
a:      .byte 0x7f
b:      .byte 0x01
  )");
  EXPECT_EQ(r.acc, 0x80);
  EXPECT_FALSE(r.flags.c);
  EXPECT_TRUE(r.flags.v);  // 0x7f + 1 overflows signed
  EXPECT_TRUE(r.flags.n);

  auto r2 = run_source(R"(
        lda a
        add b
        hlt
        .org 0x80
a:      .byte 0xff
b:      .byte 0x01
  )");
  EXPECT_EQ(r2.acc, 0x00);
  EXPECT_TRUE(r2.flags.c);
  EXPECT_TRUE(r2.flags.z);
}

TEST(Cpu, SubSetsBorrowSemantics) {
  auto r = run_source(R"(
        lda a
        sub b
        hlt
        .org 0x80
a:      .byte 0x05
b:      .byte 0x07
  )");
  EXPECT_EQ(r.acc, 0xFE);
  EXPECT_FALSE(r.flags.c);  // borrow occurred
  EXPECT_TRUE(r.flags.n);
}

TEST(Cpu, LogicOps) {
  auto r = run_source(R"(
        lda a
        and b
        hlt
        .org 0x80
a:      .byte 0xf0
b:      .byte 0x3c
  )");
  EXPECT_EQ(r.acc, 0x30);

  auto r2 = run_source(R"(
        lda a
        ora b
        hlt
        .org 0x80
a:      .byte 0xf0
b:      .byte 0x3c
  )");
  EXPECT_EQ(r2.acc, 0xFC);

  auto r3 = run_source(R"(
        lda a
        xra b
        hlt
        .org 0x80
a:      .byte 0xf0
b:      .byte 0x3c
  )");
  EXPECT_EQ(r3.acc, 0xCC);
}

TEST(Cpu, SinglesClaCmaIncShift) {
  auto r = run_source(R"(
        lda v
        cma
        hlt
        .org 0x80
v:      .byte 0x0f
  )");
  EXPECT_EQ(r.acc, 0xF0);

  auto r2 = run_source(R"(
        lda v
        inc
        hlt
        .org 0x80
v:      .byte 0xff
  )");
  EXPECT_EQ(r2.acc, 0x00);
  EXPECT_TRUE(r2.flags.c);
  EXPECT_TRUE(r2.flags.z);

  auto r3 = run_source(R"(
        lda v
        asl
        hlt
        .org 0x80
v:      .byte 0x81
  )");
  EXPECT_EQ(r3.acc, 0x02);
  EXPECT_TRUE(r3.flags.c);

  auto r4 = run_source(R"(
        lda v
        asr
        hlt
        .org 0x80
v:      .byte 0x81
  )");
  EXPECT_EQ(r4.acc, 0xC0);  // arithmetic: sign preserved
  EXPECT_TRUE(r4.flags.c);
}

TEST(Cpu, CarryFlagOps) {
  auto r = run_source("stc\n cmc\n hlt\n");
  EXPECT_FALSE(r.flags.c);
  auto r2 = run_source("stc\n hlt\n");
  EXPECT_TRUE(r2.flags.c);
}

TEST(Cpu, BranchTakenAndNotTaken) {
  auto r = run_source(R"(
        cla           ; Z set
        bz  skip
        lda v         ; skipped
skip:   hlt
        .org 0x80
v:      .byte 0x55
  )");
  EXPECT_EQ(r.acc, 0x00);

  auto r2 = run_source(R"(
        lda v         ; Z clear
        bz  skip
        cma
skip:   hlt
        .org 0x80
v:      .byte 0x55
  )");
  EXPECT_EQ(r2.acc, 0xAA);  // branch not taken, cma executed
}

TEST(Cpu, BranchConditionsCVN) {
  auto r = run_source(R"(
        stc
        bc  ok
        hlt
ok:     lda v
        hlt
        .org 0x80
v:      .byte 0x11
  )");
  EXPECT_EQ(r.acc, 0x11);

  auto r2 = run_source(R"(
        lda v
        bn  ok
        hlt
ok:     cla
        hlt
        .org 0x80
v:      .byte 0x80
  )");
  EXPECT_TRUE(r2.flags.z);
}

TEST(Cpu, JmpTransfersControl) {
  auto r = run_source(R"(
        jmp far
        hlt
        .org 0x345
far:    lda v
        hlt
        .org 0x80
v:      .byte 0x77
  )");
  EXPECT_EQ(r.acc, 0x77);
}

TEST(Cpu, JsrStoresReturnOffsetAndJmiReturns) {
  // PARWAN convention: JSR writes the return offset at the target and
  // continues at target+1; JMI through the target returns (same page).
  auto r = run_source(R"(
        .org 0x100
        jsr sub
        lda v      ; executed after return
        hlt
        .org 0x140
sub:    .res 1
        cma
        jmi sub
        .org 0x80
v:      .byte 0x21
  )");
  EXPECT_EQ(r.acc, 0x21);
  EXPECT_EQ(r.port.mem[0x140], 0x02);  // offset of return address 0x102
}

TEST(Cpu, IllegalOpcodeHalts) {
  FlatMemoryPort port;
  port.mem[0] = 0xA0;
  Cpu cpu(port);
  cpu.reset(0);
  cpu.run(100);
  EXPECT_EQ(cpu.halt_reason(), HaltReason::kIllegalOpcode);
}

TEST(Cpu, CycleCountsPerInstructionClass) {
  // LDA: fetch1 + decode + fetch2 + mem + exec = 5 cycles; HLT: 3.
  auto r = run_source(R"(
        lda v
        hlt
        .org 0x80
v:      .byte 0x01
  )");
  EXPECT_EQ(r.cycles, 5u + 3u);

  // JMP: 4 cycles (no operand transaction).
  auto r2 = run_source(R"(
        jmp t
t:      hlt
  )");
  EXPECT_EQ(r2.cycles, 4u + 3u);

  // Branch (not taken): 4; single: 3.
  auto r3 = run_source(R"(
        bz t
t:      nop
        hlt
  )");
  EXPECT_EQ(r3.cycles, 4u + 3u + 3u);
}

TEST(Cpu, BusTransactionSequenceForLda) {
  // Fig. 5: fetch byte1 at Ai, fetch byte2 at Ai+1, read operand at Ax.
  auto r = run_source(R"(
        .org 0x010
        lda 0x380
        hlt
        .org 0x380
        .byte 0x5a
  )");
  ASSERT_GE(r.port.log.size(), 3u);
  EXPECT_EQ(r.port.log[0].addr, 0x010);
  EXPECT_FALSE(r.port.log[0].write);
  EXPECT_EQ(r.port.log[1].addr, 0x011);
  EXPECT_EQ(r.port.log[2].addr, 0x380);
  EXPECT_EQ(r.port.log[2].data, 0x5A);
}

TEST(Cpu, PcWrapsAtTopOfMemory) {
  FlatMemoryPort port;
  port.mem[0xFFF] = 0xF0;  // nop at the very top
  port.mem[0x000] = 0xF8;  // hlt after wrap
  Cpu cpu(port);
  cpu.reset(0xFFF);
  cpu.run(100);
  EXPECT_EQ(cpu.halt_reason(), HaltReason::kHltInstruction);
}

TEST(Cpu, StepIsNoopWhenHalted) {
  FlatMemoryPort port;
  port.mem[0] = 0xF8;
  Cpu cpu(port);
  cpu.reset(0);
  cpu.run(100);
  const auto cycles = cpu.cycles();
  cpu.step();
  EXPECT_EQ(cpu.cycles(), cycles);
}

TEST(Cpu, ResetClearsState) {
  FlatMemoryPort port;
  port.mem[0] = 0xF8;
  Cpu cpu(port);
  cpu.set_acc(0x55);
  cpu.reset(0x123);
  EXPECT_EQ(cpu.pc(), 0x123);
  EXPECT_EQ(cpu.acc(), 0x00);
  EXPECT_FALSE(cpu.halted());
  EXPECT_EQ(cpu.cycles(), 0u);
}

TEST(Cpu, RunStopsAtCycleCap) {
  FlatMemoryPort port;
  // Infinite loop: jmp 0.
  port.mem[0] = 0x70;
  port.mem[1] = 0x00;
  Cpu cpu(port);
  cpu.reset(0);
  EXPECT_FALSE(cpu.run(100));
  EXPECT_FALSE(cpu.halted());
  EXPECT_GE(cpu.cycles(), 100u);
}

TEST(Flags, MaskLayoutMatchesBranchNibble) {
  Flags f;
  f.z = true;
  EXPECT_EQ(f.mask(), kCondZ);
  f.n = f.c = f.v = true;
  EXPECT_EQ(f.mask(), kCondN | kCondZ | kCondC | kCondV);
}

}  // namespace
}  // namespace xtest::cpu
