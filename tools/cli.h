// Command-line driver (library part, unit-testable).
//
// Subcommands mirror a tester flow:
//
//   xtest generate [--sessions] [--out PREFIX]    emit program image(s)
//   xtest assemble FILE.s [--out FILE.img]        assemble a program
//   xtest disasm FILE.img                         list an image
//   xtest run FILE.img --entry ADDR [--trace]     execute on the system
//   xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]
//                                                 defect-coverage campaign
//
// Images use the text format of sim/serialize.h.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xtest::cli {

/// Runs one command; writes human output to `out`, errors to `err`.
/// Returns a process exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace xtest::cli
