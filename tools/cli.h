// Command-line driver (library part, unit-testable).
//
// Subcommands mirror a tester flow:
//
//   xtest generate [--sessions] [--out PREFIX]    emit program image(s)
//   xtest assemble FILE.s [--out FILE.img]        assemble a program
//   xtest disasm FILE.img                         list an image
//   xtest run FILE.img --entry ADDR [--trace]     execute on the system
//   xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]
//                  [--threads T] [--checkpoint FILE] [--no-retry]
//                  [--faults SPEC] [--defect-deadline-ms N]
//                  [--workers N] [--shard K/N]    defect-coverage campaign
//   xtest chaos [--bus B] [--defects N] [--seed S] [--cycles K]
//               [--threads T] [--workers N]       kill/resume soak test
//
// Images use the text format of sim/serialize.h.

#pragma once

#include <atomic>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace xtest::cli {

/// Exit codes: every failure mode has its own code so scripts and CI can
/// distinguish a typo from a broken file from a failed simulation -- and
/// an operator interrupt (resumable from its checkpoint) from all three.
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;        // bad command line
inline constexpr int kExitIo = 3;           // cannot read/write a file
inline constexpr int kExitSim = 4;          // simulation/campaign failure
inline constexpr int kExitInterrupted = 5;  // SIGINT/SIGTERM, resumable
/// A supervised multi-process campaign completed, but at least one worker
/// shard exhausted its retries and was quarantined: the summary is
/// printed, unrecovered defects are reported as sim errors, and this code
/// tells wrappers the result is partial (graceful degradation, not a
/// crash).
inline constexpr int kExitDegraded = 6;

/// Bad command line: unknown flag value, missing operand, unparsable
/// number.  Mapped to kExitUsage at the run() boundary.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Filesystem failure: unreadable input, unwritable output.  Mapped to
/// kExitIo at the run() boundary.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Cooperative-shutdown flag: campaign subcommands poll it between defect
/// simulations, flush a final checkpoint, and exit with kExitInterrupted
/// when it goes true.  main() sets it from SIGINT/SIGTERM (it is lock-free
/// and async-signal-safe to store to); tests set it directly.  run() never
/// clears it -- callers that reuse the process (tests) reset it themselves.
std::atomic<bool>& interrupt_flag();

/// Runs one command; writes human output to `out`, errors to `err`.
/// Returns a process exit code.  Never lets an exception escape: every
/// failure is reported as a one-line "error: ..." on `err` plus the
/// matching exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace xtest::cli
