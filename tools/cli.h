// Command-line driver (library part, unit-testable).
//
// Subcommands mirror a tester flow:
//
//   xtest generate [--sessions] [--out PREFIX]    emit program image(s)
//   xtest assemble FILE.s [--out FILE.img]        assemble a program
//   xtest disasm FILE.img                         list an image
//   xtest run FILE.img --entry ADDR [--trace]     execute on the system
//   xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]
//                  [--threads T] [--checkpoint FILE] [--no-retry]
//                                                 defect-coverage campaign
//
// Images use the text format of sim/serialize.h.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace xtest::cli {

/// Exit codes: every failure mode has its own code so scripts and CI can
/// distinguish a typo from a broken file from a failed simulation.
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;  // bad command line
inline constexpr int kExitIo = 3;     // cannot read/write a file
inline constexpr int kExitSim = 4;    // simulation/campaign failure

/// Bad command line: unknown flag value, missing operand, unparsable
/// number.  Mapped to kExitUsage at the run() boundary.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Filesystem failure: unreadable input, unwritable output.  Mapped to
/// kExitIo at the run() boundary.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Runs one command; writes human output to `out`, errors to `err`.
/// Returns a process exit code.  Never lets an exception escape: every
/// failure is reported as a one-line "error: ..." on `err` plus the
/// matching exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace xtest::cli
