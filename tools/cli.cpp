#include "tools/cli.h"

#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "cpu/assembler.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/serialize.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "soc/waveform.h"
#include "util/parallel.h"
#include "util/table.h"

namespace xtest::cli {

namespace {

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key [value]
};

Parsed parse(const std::vector<std::string>& args) {
  Parsed p;
  if (!args.empty()) p.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Flags with values: peek at the next token.
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        p.options[key] = args[++i];
      } else {
        p.options[key] = "";
      }
    } else {
      p.positional.push_back(a);
    }
  }
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write " + path);
  out << content;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  xtest generate [--sessions] [--out PREFIX]\n"
         "  xtest assemble FILE.s [--out FILE.img]\n"
         "  xtest disasm FILE.img\n"
         "  xtest run FILE.img --entry ADDR [--trace] [--max-cycles N]\n"
         "  xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]\n"
         "                 [--threads T]   (0 = auto / $XTEST_THREADS)\n"
         "                 [--checkpoint FILE] [--no-retry]\n"
         "exit codes: 0 ok, 2 usage, 3 I/O, 4 simulation\n";
  return kExitUsage;
}

soc::BusKind parse_bus(const std::string& name) {
  if (name == "addr" || name == "address") return soc::BusKind::kAddress;
  if (name == "data") return soc::BusKind::kData;
  if (name == "ctrl" || name == "control") return soc::BusKind::kControl;
  throw UsageError("unknown bus '" + name + "'");
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError("--" + flag + ": not a number: '" + value + "'");
  }
}

int cmd_generate(const Parsed& p, std::ostream& out) {
  sbst::GeneratorConfig cfg;
  std::vector<sbst::GenerationResult> sessions;
  if (p.options.count("sessions")) {
    sessions = sbst::TestProgramGenerator::generate_sessions(cfg);
  } else {
    sessions.push_back(sbst::TestProgramGenerator(cfg).generate());
  }
  const std::string prefix = p.options.count("out")
                                 ? p.options.at("out")
                                 : std::string();
  util::Table t({"session", "tests", "unplaced", "bytes", "entry"});
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    char entry[16];
    std::snprintf(entry, sizeof entry, "0x%03x", r.program.entry);
    t.add_row({std::to_string(s), std::to_string(r.program.tests.size()),
               std::to_string(r.unplaced.size()),
               std::to_string(r.program.program_bytes()), entry});
    if (!prefix.empty()) {
      write_file(prefix + std::to_string(s) + ".img",
                 sim::image_to_text(r.program.image));
    }
  }
  out << t.render();
  if (!prefix.empty())
    out << "images written to " << prefix << "<N>.img\n";
  return 0;
}

int cmd_assemble(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("assemble: missing source file");
  const cpu::AsmResult r = cpu::assemble(read_file(p.positional[0]));
  const std::string text = sim::image_to_text(r.image);
  if (p.options.count("out")) {
    write_file(p.options.at("out"), text);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu bytes, entry 0x%03x\n",
                  r.image.defined_count(), r.entry);
    out << buf;
  } else {
    out << text;
  }
  return 0;
}

int cmd_disasm(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("disasm: missing image file");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  out << cpu::disassemble_image(img);
  return 0;
}

int cmd_run(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("run: missing image file");
  if (!p.options.count("entry"))
    throw UsageError("run: --entry required");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  const auto entry =
      static_cast<cpu::Addr>(parse_u64("entry", p.options.at("entry")));
  const std::uint64_t max_cycles =
      p.options.count("max-cycles")
          ? parse_u64("max-cycles", p.options.at("max-cycles"))
          : 1'000'000;

  soc::System sys;
  soc::BusTrace trace;
  if (p.options.count("trace")) sys.set_trace(&trace);
  sys.load_and_reset(img, entry);
  const soc::RunResult r = sys.run(max_cycles);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "halted=%d reason=%s cycles=%llu acc=0x%02x\n", r.halted,
                r.reason == cpu::HaltReason::kHltInstruction ? "hlt"
                : r.reason == cpu::HaltReason::kIllegalOpcode
                    ? "illegal"
                    : "running",
                static_cast<unsigned long long>(r.cycles),
                sys.processor().acc());
  out << buf;
  if (p.options.count("trace")) {
    out << "\naddress bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kAddress)
        << "\ndata bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kData);
  }
  return 0;
}

int cmd_campaign(const Parsed& p, std::ostream& out, std::ostream& err) {
  const soc::BusKind bus = parse_bus(
      p.options.count("bus") ? p.options.at("bus") : "addr");
  const std::size_t defects =
      p.options.count("defects")
          ? static_cast<std::size_t>(
                parse_u64("defects", p.options.at("defects")))
          : 200;
  const std::uint64_t seed =
      p.options.count("seed") ? parse_u64("seed", p.options.at("seed"))
                              : 20010618ull;
  util::ParallelConfig par = util::ParallelConfig::from_env();
  if (p.options.count("threads"))
    par.threads = static_cast<unsigned>(
        parse_u64("threads", p.options.at("threads")));

  const soc::SystemConfig cfg;
  const auto lib = sim::make_defect_library(cfg, bus, defects, seed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  util::CampaignStats stats;

  sim::CampaignOptions opts;
  opts.parallel = par;
  opts.stats = &stats;
  opts.retry_errors = !p.options.count("no-retry");
  if (p.options.count("checkpoint")) {
    opts.checkpoint_path = p.options.at("checkpoint");
    if (opts.checkpoint_path.empty())
      throw UsageError("--checkpoint: missing file name");
    opts.checkpoint_key = sim::default_checkpoint_key(bus, lib);
  }
  const std::vector<sim::Verdict> det =
      sim::run_detection_sessions(cfg, sessions, bus, lib, opts);

  const sim::VerdictCounts vc = sim::count_verdicts(det);
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "bus=%s defects=%zu coverage=%.1f%% (seed %llu)\n"
                "detected=%zu timeout=%zu undetected=%zu sim_errors=%zu "
                "retries=%zu restored=%zu\n"
                "threads=%u simulations=%zu cycles=%llu wall=%.3fs "
                "defects/sec=%.0f\n",
                soc::to_string(bus).c_str(), lib.size(),
                100.0 * sim::coverage(det),
                static_cast<unsigned long long>(seed), vc.detected,
                vc.detected_by_timeout, vc.undetected, vc.sim_errors,
                stats.retries, stats.restored_from_checkpoint, stats.threads,
                stats.defects_simulated,
                static_cast<unsigned long long>(stats.simulated_cycles),
                stats.wall_seconds, stats.defects_per_second());
  out << buf;
  for (const std::string& e : stats.error_log)
    err << "warning: " << e << '\n';
  return kExitOk;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  const Parsed p = parse(args);
  try {
    if (p.command == "generate") return cmd_generate(p, out);
    if (p.command == "assemble") return cmd_assemble(p, out);
    if (p.command == "disasm") return cmd_disasm(p, out);
    if (p.command == "run") return cmd_run(p, out);
    if (p.command == "campaign") return cmd_campaign(p, out, err);
    return usage(err);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << '\n';
    return kExitUsage;
  } catch (const IoError& e) {
    err << "error: " << e.what() << '\n';
    return kExitIo;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kExitSim;
  } catch (...) {
    err << "error: unknown failure\n";
    return kExitSim;
  }
}

}  // namespace xtest::cli
