#include "tools/cli.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "cpu/assembler.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/serialize.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "soc/waveform.h"
#include "util/fault_injector.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace xtest::cli {

namespace {

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key [value]
};

Parsed parse(const std::vector<std::string>& args) {
  Parsed p;
  if (!args.empty()) p.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Flags with values: peek at the next token.
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        p.options[key] = args[++i];
      } else {
        p.options[key] = "";
      }
    } else {
      p.positional.push_back(a);
    }
  }
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write " + path);
  out << content;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  xtest generate [--sessions] [--out PREFIX]\n"
         "  xtest assemble FILE.s [--out FILE.img]\n"
         "  xtest disasm FILE.img\n"
         "  xtest run FILE.img --entry ADDR [--trace] [--max-cycles N]\n"
         "  xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]\n"
         "                 [--threads T]   (0 = auto / $XTEST_THREADS)\n"
         "                 [--checkpoint FILE] [--no-retry]\n"
         "                 [--faults SPEC] (or $XTEST_FAULTS; "
         "site[@N|%P],...[:seed])\n"
         "                 [--defect-deadline-ms N] (watchdog, 0 = off)\n"
         "                 [--stats-json] (one-line stats record)\n"
         "  xtest chaos    [--bus addr|data|ctrl] [--defects N] [--seed S]\n"
         "                 [--cycles K] [--threads T] (kill/resume soak)\n"
         "exit codes: 0 ok, 2 usage, 3 I/O, 4 simulation, 5 interrupted "
         "(resumable)\n";
  return kExitUsage;
}

/// Arms the process-wide injector from --faults for the duration of one
/// command; disarms on the way out so an embedding process (the tests)
/// does not leak fault rules into the next command.
class FaultSpecGuard {
 public:
  explicit FaultSpecGuard(const std::string& spec) {
    if (spec.empty()) return;
    try {
      util::FaultInjector::global().configure(spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    armed_ = true;
  }
  ~FaultSpecGuard() {
    if (armed_) util::FaultInjector::global().disarm();
  }
  FaultSpecGuard(const FaultSpecGuard&) = delete;
  FaultSpecGuard& operator=(const FaultSpecGuard&) = delete;

 private:
  bool armed_ = false;
};

soc::BusKind parse_bus(const std::string& name) {
  if (name == "addr" || name == "address") return soc::BusKind::kAddress;
  if (name == "data") return soc::BusKind::kData;
  if (name == "ctrl" || name == "control") return soc::BusKind::kControl;
  throw UsageError("unknown bus '" + name + "'");
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError("--" + flag + ": not a number: '" + value + "'");
  }
}

int cmd_generate(const Parsed& p, std::ostream& out) {
  sbst::GeneratorConfig cfg;
  std::vector<sbst::GenerationResult> sessions;
  if (p.options.count("sessions")) {
    sessions = sbst::TestProgramGenerator::generate_sessions(cfg);
  } else {
    sessions.push_back(sbst::TestProgramGenerator(cfg).generate());
  }
  const std::string prefix = p.options.count("out")
                                 ? p.options.at("out")
                                 : std::string();
  util::Table t({"session", "tests", "unplaced", "bytes", "entry"});
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    char entry[16];
    std::snprintf(entry, sizeof entry, "0x%03x", r.program.entry);
    t.add_row({std::to_string(s), std::to_string(r.program.tests.size()),
               std::to_string(r.unplaced.size()),
               std::to_string(r.program.program_bytes()), entry});
    if (!prefix.empty()) {
      write_file(prefix + std::to_string(s) + ".img",
                 sim::image_to_text(r.program.image));
    }
  }
  out << t.render();
  if (!prefix.empty())
    out << "images written to " << prefix << "<N>.img\n";
  return 0;
}

int cmd_assemble(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("assemble: missing source file");
  const cpu::AsmResult r = cpu::assemble(read_file(p.positional[0]));
  const std::string text = sim::image_to_text(r.image);
  if (p.options.count("out")) {
    write_file(p.options.at("out"), text);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu bytes, entry 0x%03x\n",
                  r.image.defined_count(), r.entry);
    out << buf;
  } else {
    out << text;
  }
  return 0;
}

int cmd_disasm(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("disasm: missing image file");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  out << cpu::disassemble_image(img);
  return 0;
}

int cmd_run(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("run: missing image file");
  if (!p.options.count("entry"))
    throw UsageError("run: --entry required");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  const auto entry =
      static_cast<cpu::Addr>(parse_u64("entry", p.options.at("entry")));
  const std::uint64_t max_cycles =
      p.options.count("max-cycles")
          ? parse_u64("max-cycles", p.options.at("max-cycles"))
          : 1'000'000;

  soc::System sys;
  soc::BusTrace trace;
  if (p.options.count("trace")) sys.set_trace(&trace);
  sys.load_and_reset(img, entry);
  const soc::RunResult r = sys.run(max_cycles);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "halted=%d reason=%s cycles=%llu acc=0x%02x\n", r.halted,
                r.reason == cpu::HaltReason::kHltInstruction ? "hlt"
                : r.reason == cpu::HaltReason::kIllegalOpcode
                    ? "illegal"
                    : "running",
                static_cast<unsigned long long>(r.cycles),
                sys.processor().acc());
  out << buf;
  if (p.options.count("trace")) {
    out << "\naddress bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kAddress)
        << "\ndata bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kData);
  }
  return 0;
}

int cmd_campaign(const Parsed& p, std::ostream& out, std::ostream& err) {
  const soc::BusKind bus = parse_bus(
      p.options.count("bus") ? p.options.at("bus") : "addr");
  const std::size_t defects =
      p.options.count("defects")
          ? static_cast<std::size_t>(
                parse_u64("defects", p.options.at("defects")))
          : 200;
  const std::uint64_t seed =
      p.options.count("seed") ? parse_u64("seed", p.options.at("seed"))
                              : 20010618ull;
  util::ParallelConfig par = util::ParallelConfig::from_env();
  if (p.options.count("threads"))
    par.threads = static_cast<unsigned>(
        parse_u64("threads", p.options.at("threads")));
  const FaultSpecGuard faults(
      p.options.count("faults") ? p.options.at("faults") : "");

  const soc::SystemConfig cfg;
  const auto lib = sim::make_defect_library(cfg, bus, defects, seed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  util::CampaignStats stats;

  sim::CampaignOptions opts;
  opts.parallel = par;
  opts.stats = &stats;
  opts.retry_errors = !p.options.count("no-retry");
  opts.cancel = &interrupt_flag();
  if (p.options.count("defect-deadline-ms"))
    opts.defect_deadline_ms =
        parse_u64("defect-deadline-ms", p.options.at("defect-deadline-ms"));
  if (p.options.count("checkpoint")) {
    opts.checkpoint_path = p.options.at("checkpoint");
    if (opts.checkpoint_path.empty())
      throw UsageError("--checkpoint: missing file name");
    opts.checkpoint_key = sim::default_checkpoint_key(bus, lib);
  }
  const std::vector<sim::Verdict> det =
      sim::run_detection_sessions(cfg, sessions, bus, lib, opts);

  const sim::VerdictCounts vc = sim::count_verdicts(det);
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "bus=%s defects=%zu coverage=%.1f%% (seed %llu)\n"
                "detected=%zu timeout=%zu undetected=%zu sim_errors=%zu "
                "retries=%zu restored=%zu salvaged=%zu dropped=%zu\n"
                "threads=%u simulations=%zu cycles=%llu wall=%.3fs "
                "defects/sec=%.0f\n"
                "cache_hits=%llu cache_misses=%llu cache_hit_rate=%.1f%% "
                "gold_reuses=%zu\n",
                soc::to_string(bus).c_str(), lib.size(),
                100.0 * sim::coverage(det),
                static_cast<unsigned long long>(seed), vc.detected,
                vc.detected_by_timeout, vc.undetected, vc.sim_errors,
                stats.retries, stats.restored_from_checkpoint,
                stats.salvaged_sections, stats.dropped_slots, stats.threads,
                stats.defects_simulated,
                static_cast<unsigned long long>(stats.simulated_cycles),
                stats.wall_seconds, stats.defects_per_second(),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                100.0 * stats.cache_hit_rate(), stats.gold_reuses);
  out << buf;
  if (p.options.count("stats-json")) out << stats.json("campaign") << '\n';
  for (const std::string& e : stats.error_log)
    err << "warning: " << e << '\n';
  return kExitOk;
}

// ---------------------------------------------------------------------------
// chaos: kill/resume soak.
//
// Proves the resilience contract end to end, in process: a campaign that
// is repeatedly killed at injector-chosen points (alternating graceful
// cancel and simulated hard crash), resumed from its checkpoint, and
// occasionally handed a checkpoint truncated at a random byte offset,
// must still converge to verdicts bitwise identical to an uninterrupted
// run -- per bus, at 1 and 4 threads.

struct ChaosOutcome {
  std::size_t kills = 0;
  std::size_t crashes = 0;
  std::size_t truncations = 0;
  std::size_t completions = 0;
};

int cmd_chaos(const Parsed& p, std::ostream& out, std::ostream& err) {
  std::vector<soc::BusKind> buses = {soc::BusKind::kAddress,
                                     soc::BusKind::kData,
                                     soc::BusKind::kControl};
  if (p.options.count("bus")) buses = {parse_bus(p.options.at("bus"))};
  const std::size_t defects =
      p.options.count("defects")
          ? static_cast<std::size_t>(
                parse_u64("defects", p.options.at("defects")))
          : 12;
  const std::uint64_t seed =
      p.options.count("seed") ? parse_u64("seed", p.options.at("seed"))
                              : 20010618ull;
  const std::size_t cycles =
      p.options.count("cycles")
          ? static_cast<std::size_t>(
                parse_u64("cycles", p.options.at("cycles")))
          : 20;
  std::vector<unsigned> thread_counts = {1, 4};
  if (p.options.count("threads")) {
    const unsigned t = static_cast<unsigned>(
        parse_u64("threads", p.options.at("threads")));
    if (t != 0) thread_counts = {t};
  }

  util::FaultInjector& inj = util::FaultInjector::global();
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;

  const soc::SystemConfig cfg;
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  std::size_t live_sessions = 0;
  for (const auto& s : sessions) live_sessions += !s.program.tests.empty();

  util::Rng rng(seed ^ 0xC4A05ull);
  util::CampaignStats stats;

  for (const soc::BusKind bus : buses) {
    const auto lib = sim::make_defect_library(cfg, bus, defects, seed);
    const std::size_t total_slots = live_sessions * lib.size();
    inj.disarm();
    const std::vector<sim::Verdict> reference =
        sim::run_detection_sessions(cfg, sessions, bus, lib, 16, {1});

    for (const unsigned threads : thread_counts) {
      const std::string ckpt =
          (std::filesystem::temp_directory_path() /
           ("xtest_chaos_" + soc::to_string(bus) + "_t" +
            std::to_string(threads) + ".ckpt"))
              .string();
      std::remove(ckpt.c_str());

      sim::CampaignOptions opts;
      opts.parallel = {threads};
      opts.stats = &stats;
      opts.cancel = &interrupt_flag();
      opts.checkpoint_path = ckpt;
      opts.checkpoint_key = sim::default_checkpoint_key(bus, lib);
      opts.checkpoint_every = 3;  // small, so a hard crash loses little

      ChaosOutcome oc;
      while (oc.kills < cycles) {
        // Kill at an injector-chosen record; past the remaining work the
        // campaign simply completes (verified and restarted from empty).
        const std::uint64_t at = 1 + rng.below(total_slots);
        const bool hard = rng.below(2) == 0;
        inj.configure((hard ? "campaign.crash@" : "campaign.kill@") +
                      std::to_string(at) + ":" +
                      std::to_string(rng.below(1u << 30)));
        try {
          const std::vector<sim::Verdict> det =
              sim::run_detection_sessions(cfg, sessions, bus, lib, opts);
          inj.disarm();
          if (det != reference) {
            err << "error: chaos: completed campaign diverged from the "
                   "uninterrupted reference (bus="
                << soc::to_string(bus) << " threads=" << threads << ")\n";
            return kExitSim;
          }
          ++oc.completions;
          std::remove(ckpt.c_str());  // start a fresh kill chain
        } catch (const sim::CampaignInterrupted&) {
          if (interrupt_flag().load()) throw;  // the operator, not us
          ++oc.kills;
          oc.crashes += hard;
          // Every third kill also corrupts the checkpoint: truncate at a
          // random byte so resume exercises the salvage path.
          if (oc.kills % 3 == 0) {
            std::error_code ec;
            const auto size = std::filesystem::file_size(ckpt, ec);
            if (!ec && size > 0) {
              std::filesystem::resize_file(ckpt, rng.below(size), ec);
              if (!ec) ++oc.truncations;
            }
          }
        }
      }

      // Drain: no more kills, the chain must finish and match.
      inj.disarm();
      const std::vector<sim::Verdict> finished =
          sim::run_detection_sessions(cfg, sessions, bus, lib, opts);
      if (finished != reference) {
        err << "error: chaos: resumed campaign diverged from the "
               "uninterrupted reference (bus="
            << soc::to_string(bus) << " threads=" << threads << ")\n";
        return kExitSim;
      }
      std::remove(ckpt.c_str());
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "chaos bus=%s threads=%u: %zu kills (%zu hard), %zu "
                    "truncations, %zu clean completions, verdicts identical\n",
                    soc::to_string(bus).c_str(), threads, oc.kills,
                    oc.crashes, oc.truncations, oc.completions);
      out << buf;
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "chaos soak passed: salvaged_sections=%zu dropped_slots=%zu "
                "restored=%zu flush_failures=%zu\n",
                stats.salvaged_sections, stats.dropped_slots,
                stats.restored_from_checkpoint, stats.flush_failures);
  out << buf;
  return kExitOk;
}

}  // namespace

std::atomic<bool>& interrupt_flag() {
  static std::atomic<bool> flag{false};
  static_assert(std::atomic<bool>::is_always_lock_free,
                "signal handlers store to this flag");
  return flag;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  const Parsed p = parse(args);
  try {
    if (p.command == "generate") return cmd_generate(p, out);
    if (p.command == "assemble") return cmd_assemble(p, out);
    if (p.command == "disasm") return cmd_disasm(p, out);
    if (p.command == "run") return cmd_run(p, out);
    if (p.command == "campaign") return cmd_campaign(p, out, err);
    if (p.command == "chaos") return cmd_chaos(p, out, err);
    return usage(err);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << '\n';
    return kExitUsage;
  } catch (const IoError& e) {
    err << "error: " << e.what() << '\n';
    return kExitIo;
  } catch (const sim::CampaignInterrupted& e) {
    err << "interrupted: " << e.what() << '\n';
    return kExitInterrupted;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kExitSim;
  } catch (...) {
    err << "error: unknown failure\n";
    return kExitSim;
  }
}

}  // namespace xtest::cli
