#include "tools/cli.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "cpu/assembler.h"
#include "hwbist/bist.h"
#include "sbst/generator.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/campaign.h"
#include "sim/online.h"
#include "sim/serialize.h"
#include "sim/supervisor.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "soc/waveform.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/parallel.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/subprocess.h"
#include "util/table.h"

namespace xtest::cli {

namespace {

// --- command/flag table ----------------------------------------------------
// One table drives BOTH the parser and usage(): a flag cannot exist in the
// parser without appearing in the synopsis or vice versa, so the two can
// never drift apart again.

struct FlagDef {
  const char* name;   ///< without the leading "--"
  const char* value;  ///< value placeholder ("N", "FILE", ...); nullptr = switch
};

struct CommandDef {
  const char* name;
  const char* positional;  ///< synopsis for positional args, nullptr = none
  std::vector<FlagDef> flags;
};

const std::vector<CommandDef>& command_table() {
  static const std::vector<CommandDef> table = {
      {"generate", nullptr, {{"sessions", nullptr}, {"out", "PREFIX"}}},
      {"assemble", "FILE.s", {{"out", "FILE.img"}}},
      {"disasm", "FILE.img", {}},
      {"run",
       "FILE.img",
       {{"entry", "ADDR"},
        {"scenario", "NAME|FILE"},
        {"trace", nullptr},
        {"max-cycles", "N"}}},
      {"campaign",
       nullptr,
       {{"scenario", "NAME|FILE"},
        {"bus", "addr|data|ctrl"},
        {"defects", "N"},
        {"seed", "S"},
        {"threads", "T"},
        {"checkpoint", "FILE"},
        {"no-retry", nullptr},
        {"faults", "SPEC"},
        {"defect-deadline-ms", "N"},
        {"batch-size", "N"},
        {"no-batch", nullptr},
        {"exec-tier", "TIER"},
        {"stats-json", nullptr},
        {"workers", "N"},
        {"shard", "K/N"},
        {"worker-retries", "N"},
        {"worker-backoff-ms", "MS"},
        {"heartbeat-fd", "FD"}}},
      {"chaos",
       nullptr,
       {{"scenario", "NAME|FILE"},
        {"bus", "addr|data|ctrl"},
        {"defects", "N"},
        {"seed", "S"},
        {"cycles", "K"},
        {"threads", "T"},
        {"batch-size", "N"},
        {"no-batch", nullptr},
        {"exec-tier", "TIER"},
        {"workers", "N"},
        {"serve", nullptr},
        {"faults", "SPEC"}}},
      {"serve",
       nullptr,
       {{"socket", "PATH"},
        {"port", "N"},
        {"queue", "FILE"},
        {"idle-timeout-ms", "MS"},
        {"job-retries", "N"},
        {"job-backoff-ms", "MS"},
        {"worker-retries", "N"},
        {"worker-backoff-ms", "MS"},
        {"faults", "SPEC"}}},
      {"submit",
       nullptr,
       {{"socket", "PATH"},
        {"port", "N"},
        {"scenario", "NAME|FILE"},
        {"bus", "addr|data|ctrl"},
        {"defects", "N"},
        {"seed", "S"},
        {"threads", "T"},
        {"batch-size", "N"},
        {"no-batch", nullptr},
        {"exec-tier", "TIER"},
        {"workers", "N"},
        {"priority", "0..9"},
        {"no-wait", nullptr},
        {"stats-json", nullptr},
        {"status", nullptr},
        {"shutdown", nullptr}}},
      {"scenarios", nullptr, {{"dump", "NAME|FILE"}}},
  };
  return table;
}

const CommandDef* find_command(const std::string& name) {
  for (const CommandDef& c : command_table())
    if (name == c.name) return &c;
  return nullptr;
}

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key [value]
};

/// Parses args[1..] against the command's flag table.  Unknown flags and
/// value flags without a value are usage errors -- the table is the
/// contract, not a suggestion.
Parsed parse(const CommandDef& cmd, const std::vector<std::string>& args) {
  Parsed p;
  p.command = cmd.name;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      const FlagDef* def = nullptr;
      for (const FlagDef& f : cmd.flags)
        if (key == f.name) {
          def = &f;
          break;
        }
      if (def == nullptr)
        throw UsageError(p.command + ": unknown flag '--" + key + "'");
      if (def->value != nullptr) {
        if (i + 1 >= args.size() || args[i + 1].rfind("--", 0) == 0)
          throw UsageError("--" + key + ": missing " +
                           std::string(def->value) + " value");
        p.options[key] = args[++i];
      } else {
        p.options[key] = "";
      }
    } else {
      p.positional.push_back(a);
    }
  }
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write " + path);
  out << content;
}

/// Rendered from command_table(): every parseable flag appears here and
/// nothing else does.
int usage(std::ostream& err) {
  err << "usage:\n";
  for (const CommandDef& c : command_table()) {
    std::string line = std::string("  xtest ") + c.name;
    if (c.positional != nullptr) line += std::string(" ") + c.positional;
    const std::string indent(line.size(), ' ');
    for (const FlagDef& f : c.flags) {
      std::string tok = std::string("[--") + f.name;
      if (f.value != nullptr) tok += std::string(" ") + f.value;
      tok += "]";
      if (line.size() + 1 + tok.size() > 78) {
        err << line << '\n';
        line = indent;
      }
      line += " " + tok;
    }
    err << line << '\n';
  }
  err << "scenarios: ";
  for (std::size_t i = 0; i < spec::builtin_scenario_names().size(); ++i)
    err << (i ? ", " : "") << spec::builtin_scenario_names()[i];
  err << "\n"
         "notes: --threads 0 = auto ($XTEST_THREADS); --faults or "
         "$XTEST_FAULTS:\n"
         "       site[@N|%P],...[:seed]; --defect-deadline-ms 0 = off\n"
         "       --workers N runs the campaign as N crash-isolated shard\n"
         "       processes under a retrying supervisor; --shard K/N runs\n"
         "       one shard in-process; --heartbeat-fd is the internal\n"
         "       worker handshake\n"
         "       serve runs the campaign daemon (framed protocol, see\n"
         "       README); submit queues a scenario on a daemon and streams\n"
         "       the result; chaos --serve soaks the daemon\n"
         "exit codes: 0 ok, 2 usage, 3 I/O, 4 simulation, 5 interrupted "
         "(resumable),\n"
         "            6 degraded (worker shard quarantined; partial "
         "results)\n";
  return kExitUsage;
}

/// Arms the process-wide injector from --faults for the duration of one
/// command; disarms on the way out so an embedding process (the tests)
/// does not leak fault rules into the next command.
class FaultSpecGuard {
 public:
  explicit FaultSpecGuard(const std::string& spec) {
    if (spec.empty()) return;
    try {
      util::FaultInjector::global().configure(spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    armed_ = true;
  }
  ~FaultSpecGuard() {
    if (armed_) util::FaultInjector::global().disarm();
  }
  FaultSpecGuard(const FaultSpecGuard&) = delete;
  FaultSpecGuard& operator=(const FaultSpecGuard&) = delete;

 private:
  bool armed_ = false;
};

soc::BusKind parse_bus(const std::string& name) {
  if (name == "addr" || name == "address") return soc::BusKind::kAddress;
  if (name == "data") return soc::BusKind::kData;
  if (name == "ctrl" || name == "control") return soc::BusKind::kControl;
  throw UsageError("unknown bus '" + name + "'");
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw UsageError("--" + flag + ": not a number: '" + value + "'");
  }
}

/// The scenario a command starts from: --scenario when given, otherwise the
/// paper baseline (which IS the pre-spec hard-coded configuration, so
/// flag-only invocations behave exactly as before).  Individual flags then
/// override single fields on top.
spec::ScenarioSpec base_scenario(const Parsed& p) {
  if (p.options.count("scenario"))
    return spec::load_scenario(p.options.at("scenario"));
  return spec::builtin_scenario("paper-baseline");
}

/// Applies the campaign-shaped override flags shared by campaign and chaos.
void apply_overrides(const Parsed& p, spec::ScenarioSpec& s) {
  if (p.options.count("bus")) s.bus = parse_bus(p.options.at("bus"));
  if (p.options.count("defects"))
    s.defect_count =
        static_cast<std::size_t>(parse_u64("defects", p.options.at("defects")));
  if (p.options.count("seed"))
    s.seed = parse_u64("seed", p.options.at("seed"));
  if (p.options.count("threads"))
    s.threads =
        static_cast<unsigned>(parse_u64("threads", p.options.at("threads")));
  if (p.options.count("batch-size")) {
    // Validate before parse_u64: stoull silently wraps a leading '-'
    // ("-3" -> 2^64-3), which would otherwise become an absurd-but-legal
    // batch size instead of the usage error it is.
    const std::string& v = p.options.at("batch-size");
    if (v.empty() || v[0] == '-' || parse_u64("batch-size", v) == 0)
      throw UsageError("--batch-size: must be a positive defect count, got '" +
                       v + "'");
    s.batch_size = static_cast<std::size_t>(parse_u64("batch-size", v));
  }
  if (p.options.count("no-batch")) s.batched = false;
  if (p.options.count("exec-tier")) {
    const std::string& v = p.options.at("exec-tier");
    const std::optional<cpu::ExecTier> tier = cpu::parse_exec_tier(v);
    if (!tier)
      throw UsageError("--exec-tier: must be reference, decoded or jit, got '" +
                       v + "'");
    s.system.exec_tier = *tier;
  }
  if (p.options.count("workers"))
    s.workers =
        static_cast<std::size_t>(parse_u64("workers", p.options.at("workers")));
  if (p.options.count("shard")) {
    const std::string& v = p.options.at("shard");
    const std::size_t slash = v.find('/');
    if (slash == std::string::npos)
      throw UsageError("--shard: expected K/N (e.g. 0/4), got '" + v + "'");
    s.shard_index = static_cast<std::size_t>(
        parse_u64("shard", v.substr(0, slash)));
    s.shard_count = static_cast<std::size_t>(
        parse_u64("shard", v.substr(slash + 1)));
  }
}

int cmd_generate(const Parsed& p, std::ostream& out) {
  sbst::GeneratorConfig cfg;
  std::vector<sbst::GenerationResult> sessions;
  if (p.options.count("sessions")) {
    sessions = sbst::TestProgramGenerator::generate_sessions(cfg);
  } else {
    sessions.push_back(sbst::TestProgramGenerator(cfg).generate());
  }
  const std::string prefix = p.options.count("out")
                                 ? p.options.at("out")
                                 : std::string();
  util::Table t({"session", "tests", "unplaced", "bytes", "entry"});
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    char entry[16];
    std::snprintf(entry, sizeof entry, "0x%03x", r.program.entry);
    t.add_row({std::to_string(s), std::to_string(r.program.tests.size()),
               std::to_string(r.unplaced.size()),
               std::to_string(r.program.program_bytes()), entry});
    if (!prefix.empty()) {
      write_file(prefix + std::to_string(s) + ".img",
                 sim::image_to_text(r.program.image));
    }
  }
  out << t.render();
  if (!prefix.empty())
    out << "images written to " << prefix << "<N>.img\n";
  return 0;
}

int cmd_assemble(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("assemble: missing source file");
  const cpu::AsmResult r = cpu::assemble(read_file(p.positional[0]));
  const std::string text = sim::image_to_text(r.image);
  if (p.options.count("out")) {
    write_file(p.options.at("out"), text);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu bytes, entry 0x%03x\n",
                  r.image.defined_count(), r.entry);
    out << buf;
  } else {
    out << text;
  }
  return 0;
}

int cmd_disasm(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("disasm: missing image file");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  out << cpu::disassemble_image(img);
  return 0;
}

int cmd_run(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw UsageError("run: missing image file");
  if (!p.options.count("entry"))
    throw UsageError("run: --entry required");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  const auto entry =
      static_cast<cpu::Addr>(parse_u64("entry", p.options.at("entry")));
  const std::uint64_t max_cycles =
      p.options.count("max-cycles")
          ? parse_u64("max-cycles", p.options.at("max-cycles"))
          : 1'000'000;
  // --scenario selects the electrical environment the image runs in
  // (geometries, Cth ratio, clock scaling); the default spec is the
  // default SystemConfig, so flag-less runs are unchanged.
  const spec::ScenarioSpec s = base_scenario(p);
  s.validate();

  soc::System sys(s.system);
  soc::BusTrace trace;
  if (p.options.count("trace")) sys.set_trace(&trace);
  sys.load_and_reset(img, entry);
  const soc::RunResult r = sys.run(max_cycles);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "halted=%d reason=%s cycles=%llu acc=0x%02x\n", r.halted,
                r.reason == cpu::HaltReason::kHltInstruction ? "hlt"
                : r.reason == cpu::HaltReason::kIllegalOpcode
                    ? "illegal"
                    : "running",
                static_cast<unsigned long long>(r.cycles),
                sys.processor().acc());
  out << buf;
  if (p.options.count("trace")) {
    out << "\naddress bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kAddress)
        << "\ndata bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kData);
  }
  return 0;
}

/// The standard campaign summary, shared by the in-process and the
/// supervised paths so the two outputs stay diffable line for line.  The
/// verdict breakdown and the resilience counters are separate lines: the
/// first is a pure function of the campaign inputs (what CI diffs between
/// serial and supervised runs), the second describes how this particular
/// run got there.  A sharded run counts only its owned slots.
void print_campaign_summary(std::ostream& out, const spec::ScenarioSpec& s,
                            std::size_t lib_size,
                            const std::vector<sim::Verdict>& det,
                            const util::CampaignStats& stats) {
  const sim::ShardSpec shard{s.shard_index, s.shard_count};
  std::vector<sim::Verdict> owned;
  const std::vector<sim::Verdict>* counted = &det;
  if (shard.count > 1) {
    owned.reserve(shard.owned_of(det.size()));
    for (std::size_t i = shard.index; i < det.size(); i += shard.count)
      owned.push_back(det[i]);
    counted = &owned;
  }
  const sim::VerdictCounts vc = sim::count_verdicts(*counted);
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "bus=%s defects=%zu coverage=%.1f%% (seed %llu)\n",
                soc::to_string(s.bus).c_str(), lib_size,
                100.0 * sim::coverage(*counted),
                static_cast<unsigned long long>(s.seed));
  out << buf;
  if (shard.count > 1) {
    std::snprintf(buf, sizeof buf, "shard=%zu/%zu owned=%zu\n", shard.index,
                  shard.count, counted->size());
    out << buf;
  }
  std::snprintf(buf, sizeof buf,
                "detected=%zu timeout=%zu undetected=%zu sim_errors=%zu\n"
                "retries=%zu restored=%zu salvaged=%zu dropped=%zu\n"
                "threads=%u simulations=%zu cycles=%llu wall=%.3fs "
                "defects/sec=%.0f\n"
                "cache_hits=%llu cache_misses=%llu cache_hit_rate=%.1f%% "
                "gold_reuses=%zu run_reuses=%zu\n",
                vc.detected, vc.detected_by_timeout, vc.undetected,
                vc.sim_errors, stats.retries, stats.restored_from_checkpoint,
                stats.salvaged_sections, stats.dropped_slots, stats.threads,
                stats.defects_simulated,
                static_cast<unsigned long long>(stats.simulated_cycles),
                stats.wall_seconds, stats.defects_per_second(),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                100.0 * stats.cache_hit_rate(), stats.gold_reuses,
                stats.run_reuses);
  out << buf;
  if (s.batched) {
    std::snprintf(buf, sizeof buf,
                  "batch=%zu screened=%zu batched_transitions=%llu "
                  "batch_fill=%.1f%%\n",
                  s.batch_size, stats.batch_screened,
                  static_cast<unsigned long long>(stats.batched_transitions),
                  100.0 * stats.batch_fill());
  } else {
    std::snprintf(buf, sizeof buf, "batch=off\n");
  }
  out << buf;
  std::snprintf(buf, sizeof buf,
                "tier=%s decoded_programs=%llu decode_cache_hits=%llu "
                "jit_blocks=%llu jit_bailouts=%llu\n",
                cpu::to_string(s.system.exec_tier).c_str(),
                static_cast<unsigned long long>(stats.decoded_programs),
                static_cast<unsigned long long>(stats.decode_cache_hits),
                static_cast<unsigned long long>(stats.jit_blocks),
                static_cast<unsigned long long>(stats.jit_bailouts));
  out << buf;
}

/// On-line campaign lines: the scheduling cost of the self-test itself
/// (the gold schedule's interference) and the detection-latency
/// distribution over the detected defects.
void print_online_summary(std::ostream& out, const sim::OnlineResult& r) {
  std::size_t detected = 0;
  std::uint64_t latency_sum = 0, latency_max = 0;
  for (const sim::OnlineOutcome& o : r.outcomes) {
    if (o.detection_latency_cycles == 0) continue;
    ++detected;
    latency_sum += o.detection_latency_cycles;
    if (o.detection_latency_cycles > latency_max)
      latency_max = o.detection_latency_cycles;
  }
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "online gold: rounds=%llu heartbeats=%llu "
                "deadlines_late=%llu deadlines_missed=%llu\n",
                static_cast<unsigned long long>(r.gold.rounds),
                static_cast<unsigned long long>(r.gold.heartbeats),
                static_cast<unsigned long long>(r.gold.deadlines_late),
                static_cast<unsigned long long>(r.gold.deadlines_missed));
  out << buf;
  std::snprintf(
      buf, sizeof buf,
      "online latency: samples=%zu mean=%.0f max=%llu cycles\n", detected,
      detected > 0 ? static_cast<double>(latency_sum) / detected : 0.0,
      static_cast<unsigned long long>(latency_max));
  out << buf;
}

/// Section 1 comparison: a test-mode hardware BIST drives the full MA set
/// directly on the same nominal network / error model / library.
void print_bist_compare(std::ostream& out, const spec::ScenarioSpec& s,
                        const xtalk::DefectLibrary& lib,
                        const std::vector<sim::Verdict>& det,
                        const util::ParallelConfig& parallel) {
  const soc::System sys(s.system);
  const xtalk::RcNetwork* net = &sys.nominal_address_network();
  const xtalk::CrosstalkErrorModel* model = &sys.address_model();
  bool bidirectional = false;
  if (s.bus == soc::BusKind::kData) {
    net = &sys.nominal_data_network();
    model = &sys.data_model();
    bidirectional = s.program.data_both_directions;
  } else if (s.bus == soc::BusKind::kControl) {
    net = &sys.nominal_control_network();
    model = &sys.control_model();
  }
  const hwbist::HardwareBist bist(net->width(), bidirectional);
  const std::vector<sim::Verdict> bv =
      bist.run_library(*net, *model, lib, parallel);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "bist coverage=%.1f%% (%zu MA patterns) sbst=%.1f%% "
                "delta=%+.1f\n",
                100.0 * sim::coverage(bv), bist.patterns().size(),
                100.0 * sim::coverage(det),
                100.0 * (sim::coverage(bv) - sim::coverage(det)));
  out << buf;
}

/// Builds the supervisor's job description for a scenario: materialized
/// library metadata plus the worker-facing scenario file (`<base>.job.scn`,
/// the exact spec with supervision stripped so a worker can never recurse
/// into spawning its own workers).  The caller owns deleting the job file.
sim::SupervisorJob make_supervisor_job(const spec::ScenarioSpec& s,
                                       const xtalk::DefectLibrary& lib,
                                       std::size_t session_count,
                                       const std::vector<bool>& session_live,
                                       const std::string& checkpoint_base,
                                       const std::string& fault_spec) {
  sim::SupervisorJob job;
  // $XTEST_WORKER_BINARY lets a process that embeds the CLI library (the
  // tests) point workers at the real xtest binary instead of itself.
  const char* worker_bin = std::getenv("XTEST_WORKER_BINARY");
  job.binary = worker_bin != nullptr && *worker_bin != '\0'
                   ? worker_bin
                   : util::current_executable();
  if (job.binary.empty())
    throw IoError("cannot resolve own executable path to spawn workers");
  job.defect_count = lib.size();
  for (std::size_t i = 0; i < session_count; ++i)
    if (session_live[i]) job.sections.push_back("session" + std::to_string(i));
  job.checkpoint_key = sim::default_checkpoint_key(s.bus, lib);
  job.checkpoint_base = checkpoint_base;
  job.fault_spec = fault_spec;

  spec::ScenarioSpec worker_spec = s;
  worker_spec.workers = 0;
  job.scenario_path = checkpoint_base + ".job.scn";
  write_file(job.scenario_path, spec::serialize_scenario(worker_spec));
  return job;
}

/// Removes a temp file on scope exit (the worker job scenario).
struct FileCleanup {
  std::string path;
  ~FileCleanup() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

int cmd_campaign_supervised(const Parsed& p, const spec::ScenarioSpec& s,
                            std::ostream& out, std::ostream& err) {
  const std::string fault_spec =
      p.options.count("faults") ? p.options.at("faults") : "";
  // Armed in the parent for the supervisor.* sites; the same spec travels
  // to every worker on its command line for the worker-side sites.
  const FaultSpecGuard faults(fault_spec);

  const auto lib = s.make_library();
  const auto sessions = s.make_sessions();
  std::vector<bool> live(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i)
    live[i] = !sessions[i].program.tests.empty();

  std::string base;
  if (p.options.count("checkpoint")) {
    base = p.options.at("checkpoint");
    if (base.empty()) throw UsageError("--checkpoint: missing file name");
  } else {
    // Deterministic default so an interrupted supervised run resumes when
    // re-invoked with the same scenario.
    base = (std::filesystem::temp_directory_path() /
            ("xtest_" + s.name + "_" + soc::to_string(s.bus) + "_" +
             std::to_string(static_cast<unsigned long long>(s.seed)) +
             ".ckpt"))
               .string();
  }

  const sim::SupervisorJob job =
      make_supervisor_job(s, lib, sessions.size(), live, base, fault_spec);
  const FileCleanup job_file{job.scenario_path};

  sim::SupervisorOptions sup;
  sup.workers = s.workers;
  if (p.options.count("worker-retries"))
    sup.worker_retries = static_cast<std::size_t>(
        parse_u64("worker-retries", p.options.at("worker-retries")));
  if (p.options.count("worker-backoff-ms"))
    sup.worker_backoff_ms =
        parse_u64("worker-backoff-ms", p.options.at("worker-backoff-ms"));
  sup.cancel = &interrupt_flag();
  sup.log = &err;

  sim::Supervisor supervisor(job, sup);
  const sim::SupervisorResult r = supervisor.run();

  print_campaign_summary(out, s, lib.size(), r.verdicts, r.stats);
  std::size_t spawns = 0;
  for (const sim::ShardOutcome& o : r.shards) spawns += o.spawns;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "workers=%zu spawns=%zu respawns=%zu heartbeats=%zu "
                "quarantined=%zu\n",
                s.workers, spawns, r.respawns, r.heartbeats,
                r.quarantined().size());
  out << buf;
  if (s.compare_bist)
    print_bist_compare(out, s, lib, r.verdicts, {s.threads});
  if (p.options.count("stats-json")) out << r.stats.json("campaign") << '\n';
  for (const std::string& e : r.stats.error_log)
    err << "warning: " << e << '\n';
  return r.degraded() ? kExitDegraded : kExitOk;
}

int cmd_campaign(const Parsed& p, std::ostream& out, std::ostream& err) {
  spec::ScenarioSpec s = base_scenario(p);
  apply_overrides(p, s);
  if (p.options.count("no-retry")) s.retry_errors = false;
  if (p.options.count("defect-deadline-ms"))
    s.defect_deadline_ms =
        parse_u64("defect-deadline-ms", p.options.at("defect-deadline-ms"));
  s.validate();

  // --heartbeat-fd marks a supervisor-spawned worker; workers never spawn
  // workers of their own (the supervisor also strips `workers` from the
  // job scenario, this is the second line of defence).
  const bool worker_mode = p.options.count("heartbeat-fd") != 0;
  if (s.workers > 0 && !worker_mode)
    return cmd_campaign_supervised(p, s, out, err);

  const FaultSpecGuard faults(
      p.options.count("faults") ? p.options.at("faults") : "");

  const auto lib = s.make_library();
  const auto sessions = s.make_sessions();
  util::CampaignStats stats;

  sim::CampaignOptions opts = s.campaign_options(&stats);
  opts.cancel = &interrupt_flag();
  if (p.options.count("checkpoint")) {
    opts.checkpoint_path = p.options.at("checkpoint");
    if (opts.checkpoint_path.empty())
      throw UsageError("--checkpoint: missing file name");
    opts.checkpoint_key = sim::default_checkpoint_key(s.bus, lib);
  }
  if (worker_mode) {
    // stoull would silently wrap "-1" to 2^64-1; reject the sign up front
    // so a bad fd is a usage error naming the flag, not an EBADF later.
    const std::string& hb = p.options.at("heartbeat-fd");
    if (hb.empty() || hb[0] == '-')
      throw UsageError(
          "--heartbeat-fd: must be a non-negative open descriptor, got '" +
          hb + "'");
    const int hb_fd = static_cast<int>(parse_u64("heartbeat-fd", hb));
    if (::fcntl(hb_fd, F_GETFD) == -1)
      throw UsageError("--heartbeat-fd: descriptor " + hb + " is not open");
    // Startup heartbeat: tells the supervisor the exec succeeded before
    // the (potentially long) gold run begins.
    const char hello = '+';
    if (!util::write_full(hb_fd, &hello, 1)) {
      // The supervisor is gone; keep running, the checkpoint still counts.
    }
    opts.progress = [hb_fd] {
      // The worker.exit site models a worker dying abruptly mid-campaign
      // (std::_Exit: no flush, no destructors -- exactly a crash).
      if (util::FaultInjector::global().fire("worker.exit")) std::_Exit(70);
      const char beat = '+';
      (void)util::write_full(hb_fd, &beat, 1);
    };
  }
  if (s.online.enabled) {
    // The on-line checkpoint identity also covers the interleaving knobs
    // and the electrical backend, so a resume with a different schedule is
    // rejected instead of silently mixing outcomes.
    if (!opts.checkpoint_path.empty())
      opts.checkpoint_key = sim::online_checkpoint_key(
          s.bus, lib, s.online, s.system.electrical);
    const sim::OnlineResult r = sim::run_online_detection_sessions(
        s.system, s.online, sessions, s.bus, lib, opts);
    print_campaign_summary(out, s, lib.size(), r.verdicts, stats);
    print_online_summary(out, r);
    if (p.options.count("stats-json")) out << stats.json("campaign") << '\n';
    for (const std::string& e : stats.error_log)
      err << "warning: " << e << '\n';
    return kExitOk;
  }

  const std::vector<sim::Verdict> det =
      sim::run_detection_sessions(s.system, sessions, s.bus, lib, opts);

  print_campaign_summary(out, s, lib.size(), det, stats);
  if (s.compare_bist) print_bist_compare(out, s, lib, det, opts.parallel);
  if (p.options.count("stats-json")) out << stats.json("campaign") << '\n';
  for (const std::string& e : stats.error_log)
    err << "warning: " << e << '\n';
  return kExitOk;
}

// ---------------------------------------------------------------------------
// scenarios: list the built-ins, or dump one (or a file) as scenario text.

int cmd_scenarios(const Parsed& p, std::ostream& out) {
  if (p.options.count("dump")) {
    out << spec::serialize_scenario(
        spec::load_scenario(p.options.at("dump")));
    return kExitOk;
  }
  util::Table t({"name", "bus", "defects", "description"});
  for (const std::string& name : spec::builtin_scenario_names()) {
    const spec::ScenarioSpec s = spec::builtin_scenario(name);
    t.add_row({s.name, soc::to_string(s.bus),
               std::to_string(s.defect_count), s.description});
  }
  out << t.render();
  out << "run with `xtest campaign --scenario NAME` (or a scenario file "
         "path);\ndump the full key = value text with `xtest scenarios "
         "--dump NAME`\n";
  return kExitOk;
}

// ---------------------------------------------------------------------------
// chaos: kill/resume soak.
//
// Proves the resilience contract end to end, in process: a campaign that
// is repeatedly killed at injector-chosen points (alternating graceful
// cancel and simulated hard crash), resumed from its checkpoint, and
// occasionally handed a checkpoint truncated at a random byte offset,
// must still converge to verdicts bitwise identical to an uninterrupted
// run -- per bus, at 1 and 4 threads.

struct ChaosOutcome {
  std::size_t kills = 0;
  std::size_t crashes = 0;
  std::size_t truncations = 0;
  std::size_t completions = 0;
};

/// Worker-kill soak (`chaos --workers N`): runs the campaign supervised,
/// SIGKILLing random worker processes on a steady cadence, and requires
/// the merged verdicts to be bitwise equal to the uninterrupted
/// in-process run -- the multi-process half of the resilience contract.
/// --faults forwards a spec to the supervisor (supervisor.spawn,
/// supervisor.heartbeat) and every worker (worker.exit, checkpoint.*).
int cmd_chaos_workers(const Parsed& p, std::ostream& out, std::ostream& err) {
  const bool has_scenario = p.options.count("scenario") != 0;
  spec::ScenarioSpec scn = base_scenario(p);
  if (!has_scenario) scn.defect_count = 12;  // chaos's own small default
  apply_overrides(p, scn);
  if (scn.workers == 0)
    throw UsageError("chaos: --workers must be at least 1");
  // Small flushes so every kill exercises checkpoint resume; bounded
  // worker threads so N processes do not oversubscribe the host.
  scn.checkpoint_every = 3;
  if (scn.threads == 0) scn.threads = 2;
  scn.validate();

  const std::size_t kill_budget =
      p.options.count("cycles")
          ? static_cast<std::size_t>(
                parse_u64("cycles", p.options.at("cycles")))
          : 12;
  const std::string fault_spec =
      p.options.count("faults") ? p.options.at("faults") : "";

  std::vector<soc::BusKind> buses = {soc::BusKind::kAddress,
                                     soc::BusKind::kData,
                                     soc::BusKind::kControl};
  if (p.options.count("bus"))
    buses = {parse_bus(p.options.at("bus"))};
  else if (has_scenario)
    buses = {scn.bus};

  util::FaultInjector& inj = util::FaultInjector::global();
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;

  std::size_t total_kills = 0;
  std::size_t total_respawns = 0;
  for (const soc::BusKind bus : buses) {
    spec::ScenarioSpec s = scn;
    s.bus = bus;
    const auto lib = s.make_library();
    const auto sessions = s.make_sessions();
    std::vector<bool> live(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i)
      live[i] = !sessions[i].program.tests.empty();

    // Uninterrupted in-process reference, injector disarmed: the merged
    // supervised result must match it bit for bit.
    inj.disarm();
    util::CampaignStats ref_stats;
    const sim::CampaignOptions ref_opts = s.campaign_options(&ref_stats);
    const std::vector<sim::Verdict> reference =
        sim::run_detection_sessions(s.system, sessions, s.bus, lib, ref_opts);

    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("xtest_wchaos_" + soc::to_string(bus) + ".ckpt"))
            .string();
    for (std::size_t k = 0; k < s.workers; ++k)
      std::remove(sim::Supervisor::shard_checkpoint_path(base, k).c_str());

    if (!fault_spec.empty()) {
      try {
        inj.configure(fault_spec);
      } catch (const std::invalid_argument& e) {
        throw UsageError(e.what());
      }
    }
    const sim::SupervisorJob job =
        make_supervisor_job(s, lib, sessions.size(), live, base, fault_spec);
    const FileCleanup job_file{job.scenario_path};

    sim::SupervisorOptions sup;
    sup.workers = s.workers;
    sup.chaos_kill_ms = 25;
    sup.chaos_seed = s.seed ^ static_cast<std::uint64_t>(bus);
    sup.chaos_max_kills = kill_budget;
    sup.cancel = &interrupt_flag();
    const sim::SupervisorResult r = sim::Supervisor(job, sup).run();
    inj.disarm();

    if (r.degraded()) {
      err << "error: chaos: a worker shard was quarantined (bus="
          << soc::to_string(bus) << ")\n";
      for (const std::string& e : r.stats.error_log)
        err << "  " << e << '\n';
      return kExitSim;
    }
    if (r.verdicts != reference) {
      err << "error: chaos: merged supervised verdicts diverged from the "
             "uninterrupted in-process reference (bus="
          << soc::to_string(bus) << " workers=" << s.workers << ")\n";
      return kExitSim;
    }
    total_kills += r.chaos_kills;
    total_respawns += r.respawns;
    std::size_t spawns = 0;
    for (const sim::ShardOutcome& o : r.shards) spawns += o.spawns;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "chaos bus=%s workers=%zu: %zu worker kills, %zu "
                  "respawns, %zu spawns, verdicts identical\n",
                  soc::to_string(bus).c_str(), s.workers, r.chaos_kills,
                  r.respawns, spawns);
    out << buf;
    for (std::size_t k = 0; k < s.workers; ++k)
      std::remove(sim::Supervisor::shard_checkpoint_path(base, k).c_str());
  }
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "worker chaos soak passed: %zu kills, %zu respawns across "
                "%zu bus(es)\n",
                total_kills, total_respawns, buses.size());
  out << buf;
  return kExitOk;
}

// ---------------------------------------------------------------------------
// serve / submit: the campaign service (src/serve).

/// Endpoint options shared by submit and the chaos serve soak.
serve::ClientOptions client_endpoint(const Parsed& p) {
  serve::ClientOptions o;
  if (p.options.count("socket")) o.socket_path = p.options.at("socket");
  if (p.options.count("port"))
    o.tcp_port =
        static_cast<std::uint16_t>(parse_u64("port", p.options.at("port")));
  if (o.socket_path.empty() && o.tcp_port == 0)
    throw UsageError(p.command + ": --socket PATH or --port N required");
  return o;
}

int cmd_serve(const Parsed& p, std::ostream& out, std::ostream& err) {
  serve::ServerOptions o;
  if (p.options.count("socket")) o.socket_path = p.options.at("socket");
  if (p.options.count("port"))
    o.tcp_port =
        static_cast<std::uint16_t>(parse_u64("port", p.options.at("port")));
  if (p.options.count("socket") == p.options.count("port"))
    throw UsageError("serve: exactly one of --socket PATH / --port N");
  if (!p.options.count("queue"))
    throw UsageError(
        "serve: --queue FILE required (job persistence and restart-resume)");
  o.queue_path = p.options.at("queue");
  if (p.options.count("idle-timeout-ms"))
    o.idle_timeout_ms =
        parse_u64("idle-timeout-ms", p.options.at("idle-timeout-ms"));
  if (p.options.count("job-retries"))
    o.job_retries = static_cast<std::size_t>(
        parse_u64("job-retries", p.options.at("job-retries")));
  if (p.options.count("job-backoff-ms"))
    o.job_backoff_ms =
        parse_u64("job-backoff-ms", p.options.at("job-backoff-ms"));
  if (p.options.count("worker-retries"))
    o.worker_retries = static_cast<std::size_t>(
        parse_u64("worker-retries", p.options.at("worker-retries")));
  if (p.options.count("worker-backoff-ms"))
    o.worker_backoff_ms =
        parse_u64("worker-backoff-ms", p.options.at("worker-backoff-ms"));
  o.fault_spec = p.options.count("faults") ? p.options.at("faults") : "";
  // Arms the daemon-side serve.* sites; the same spec travels to every
  // job's workers via SupervisorJob::fault_spec.
  const FaultSpecGuard faults(o.fault_spec);
  o.cancel = &interrupt_flag();
  o.log = &err;

  serve::Server server(std::move(o));
  server.start();
  if (p.options.count("socket"))
    out << "serve: listening on " << p.options.at("socket") << '\n';
  else
    out << "serve: listening on 127.0.0.1:" << server.bound_port() << '\n';
  out << "serve: ready" << std::endl;  // flushed: harnesses wait for this

  const std::size_t pending = server.run();
  const serve::ServerStats& st = server.stats();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "serve: jobs completed=%zu failed=%zu degraded=%zu "
                "retries=%zu pending=%zu\n"
                "serve: connections accepted=%zu dropped=%zu rejected=%zu "
                "idle_reaped=%zu events=%zu\n",
                st.jobs_completed, st.jobs_failed, st.jobs_degraded,
                st.job_retries, pending, st.connections_accepted,
                st.connections_dropped, st.frames_rejected, st.idle_reaped,
                st.events_streamed);
  out << buf;
  // Interrupted-with-work-pending is the resumable exit, same as a
  // checkpointed campaign: restart with the same --queue to continue.
  return pending > 0 ? kExitInterrupted : kExitOk;
}

int cmd_submit(const Parsed& p, std::ostream& out, std::ostream& err) {
  serve::Client client(client_endpoint(p));
  if (p.options.count("status")) {
    out << client.status();
    return kExitOk;
  }
  if (p.options.count("shutdown")) {
    client.request_shutdown();
    out << "shutdown requested\n";
    return kExitOk;
  }
  spec::ScenarioSpec s = base_scenario(p);
  apply_overrides(p, s);
  s.validate();
  int priority = 5;
  if (p.options.count("priority")) {
    const std::string& v = p.options.at("priority");
    if (v.empty() || v[0] == '-' || parse_u64("priority", v) > 9)
      throw UsageError("--priority: must be 0..9, got '" + v + "'");
    priority = static_cast<int>(parse_u64("priority", v));
  }

  const std::uint64_t job =
      client.submit(spec::serialize_scenario(s), priority);
  out << "job " << job << " submitted (priority " << priority << ")\n";
  if (p.options.count("no-wait")) return kExitOk;

  const serve::JobResult r = client.wait(job);
  std::vector<sim::Verdict> verdicts;
  verdicts.reserve(r.verdicts.size());
  for (const char c : r.verdicts) {
    sim::Verdict v;
    if (sim::verdict_from_char(c, v)) verdicts.push_back(v);
  }
  const sim::VerdictCounts vc = sim::count_verdicts(verdicts);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "job %llu done: exit=%d coverage=%.1f%% detected=%zu "
                "timeout=%zu undetected=%zu sim_errors=%zu\n",
                static_cast<unsigned long long>(job), r.exit_code,
                100.0 * sim::coverage(verdicts), vc.detected,
                vc.detected_by_timeout, vc.undetected, vc.sim_errors);
  out << buf;
  if (p.options.count("stats-json") && !r.stats_json.empty())
    out << r.stats_json << '\n';
  if (r.failed) {
    err << "error: job " << job << " failed: " << r.error << '\n';
    return kExitSim;
  }
  if (r.degraded) {
    err << "warning: job " << job
        << " completed degraded (a worker shard was quarantined)\n";
    return kExitDegraded;
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// chaos --serve: daemon soak.
//
// Spawns a REAL daemon child (so SIGKILL is genuine), submits three
// scenarios from two concurrently-connected clients, abandons one client
// mid-stream, SIGKILLs the daemon mid-job and restarts it against the
// same queue file, then requires every streamed verdict string to be
// bitwise equal to an uninterrupted in-process run of the same scenario.
// Socket-level faults (serve.read/serve.write) fire inside the daemon by
// default, so reconnect-and-resume is exercised on every lost connection.

int cmd_chaos_serve(const Parsed& p, std::ostream& out, std::ostream& err) {
  const char* worker_bin = std::getenv("XTEST_WORKER_BINARY");
  const std::string binary = worker_bin != nullptr && *worker_bin != '\0'
                                 ? worker_bin
                                 : util::current_executable();
  if (binary.empty())
    throw IoError("cannot resolve own executable path to spawn the daemon");

  const bool has_scenario = p.options.count("scenario") != 0;
  spec::ScenarioSpec scn = base_scenario(p);
  if (!has_scenario) {
    scn.defect_count = 10;
    scn.multi_session = false;
    scn.threads = 1;
  }
  apply_overrides(p, scn);
  scn.workers = scn.workers == 0 ? 2 : scn.workers;
  scn.validate();

  std::vector<soc::BusKind> buses = {soc::BusKind::kAddress,
                                     soc::BusKind::kData,
                                     soc::BusKind::kControl};
  if (p.options.count("bus"))
    buses = {parse_bus(p.options.at("bus"))};
  else if (has_scenario)
    buses = {scn.bus};

  // One scenario (and one in-process reference, injector disarmed) per
  // bus; three by default -- the daemon must retire all of them.
  std::vector<std::string> scenario_texts;
  std::vector<std::string> references;
  for (const soc::BusKind bus : buses) {
    spec::ScenarioSpec s = scn;
    s.bus = bus;
    s.name = "chaos-serve-" + soc::to_string(bus);
    const auto lib = s.make_library();
    const auto sessions = s.make_sessions();
    util::CampaignStats stats;
    spec::ScenarioSpec ref = s;
    ref.workers = 0;  // the reference is the plain in-process campaign
    const sim::CampaignOptions opts = ref.campaign_options(&stats);
    const std::vector<sim::Verdict> verdicts =
        sim::run_detection_sessions(s.system, sessions, s.bus, lib, opts);
    std::string chars;
    chars.reserve(verdicts.size());
    for (const sim::Verdict v : verdicts) chars.push_back(sim::to_char(v));
    scenario_texts.push_back(spec::serialize_scenario(s));
    references.push_back(std::move(chars));
  }
  while (scenario_texts.size() < 3) {
    // A single-bus run still soaks with three jobs: duplicates are fine,
    // determinism makes their verdicts identical.
    scenario_texts.push_back(scenario_texts.back());
    references.push_back(references.back());
  }

  const std::string stem =
      (std::filesystem::temp_directory_path() /
       ("xtest_serve_chaos_" + std::to_string(static_cast<long>(::getpid()))))
          .string();
  const std::string sock = stem + ".sock";
  const std::string queue = stem + ".queue";
  std::remove(sock.c_str());
  std::remove(queue.c_str());

  const std::string fault_spec =
      p.options.count("faults")
          ? p.options.at("faults")
          : "serve.read%0.01,serve.write%0.01:" + std::to_string(scn.seed);

  const auto spawn_daemon = [&] {
    util::SpawnSpec spec;
    spec.argv = {binary,          "serve",
                 "--socket",      sock,
                 "--queue",       queue,
                 "--idle-timeout-ms", "20000",
                 "--job-backoff-ms",  "50",
                 "--faults",      fault_spec};
    return util::ChildProcess::spawn(spec);
  };

  util::ChildProcess daemon = spawn_daemon();
  serve::ClientOptions co;
  co.socket_path = sock;

  std::size_t client_kills = 0;
  std::size_t daemon_kills = 0;
  int rc = kExitOk;
  std::vector<std::uint64_t> job_ids;
  try {
    // Two concurrently-connected clients submit the three jobs
    // interleaved.  Priorities order the queue 0, 1, 2.
    serve::Client a(co);
    serve::Client b(co);
    job_ids.push_back(a.submit(scenario_texts[0], 7));
    job_ids.push_back(b.submit(scenario_texts[1], 5));
    job_ids.push_back(b.submit(scenario_texts[2], 3));

    // Client kill: A watches its job until the stream is live, then is
    // abandoned mid-stream with no goodbye.
    const serve::JobResult peek =
        a.wait(job_ids[0], [](const serve::JobEvent&) { return false; });
    if (!peek.aborted)
      throw std::runtime_error("chaos serve: observer failed to abort");
    a.kill_connection();
    ++client_kills;

    // Daemon kill: SIGKILL mid-campaign, restart against the same queue.
    daemon.kill(SIGKILL);
    daemon.wait();
    ++daemon_kills;
    daemon = spawn_daemon();

    // Fresh client resumes A's job from scratch; B's next wait rides its
    // own reconnect-with-backoff across the restart gap.
    serve::Client a2(co);
    const serve::JobResult r0 = a2.wait(job_ids[0]);
    const serve::JobResult r1 = b.wait(job_ids[1]);
    const serve::JobResult r2 = b.wait(job_ids[2]);

    const std::vector<const serve::JobResult*> results = {&r0, &r1, &r2};
    for (std::size_t i = 0; i < results.size(); ++i) {
      const serve::JobResult& r = *results[i];
      if (r.failed)
        throw std::runtime_error("chaos serve: job " +
                                 std::to_string(job_ids[i]) +
                                 " failed: " + r.error);
      if (r.degraded)
        throw std::runtime_error("chaos serve: job " +
                                 std::to_string(job_ids[i]) + " degraded");
      if (r.verdicts != references[i]) {
        err << "error: chaos serve: job " << job_ids[i]
            << " verdicts diverged from the in-process reference\n";
        rc = kExitSim;
      }
    }
    if (rc == kExitOk) {
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "serve chaos soak passed: %zu jobs, %zu client kill(s), "
                    "%zu daemon SIGKILL+restart, verdicts identical\n",
                    job_ids.size(), client_kills, daemon_kills);
      out << buf;
    }
  } catch (...) {
    daemon.kill(SIGKILL);
    daemon.wait();
    std::remove(sock.c_str());
    std::remove(queue.c_str());
    throw;
  }

  // Signal-based drain (protocol shutdown could be lost to an injected
  // read fault); SIGTERM is the daemon's documented drain path.
  daemon.kill(SIGTERM);
  daemon.wait();
  std::remove(sock.c_str());
  std::remove(queue.c_str());
  return rc;
}

/// On-line kill/resume soak (an `online.enabled` scenario): the
/// interleaved campaign is killed at injector-chosen outcomes, resumed
/// from its on-line checkpoint (occasionally truncated), and must converge
/// to per-defect outcomes -- verdict, detection latency, interference
/// counters -- bitwise identical to an uninterrupted run.
int cmd_chaos_online(const Parsed& p, const spec::ScenarioSpec& scn,
                     std::ostream& out, std::ostream& err) {
  const std::size_t cycles =
      p.options.count("cycles")
          ? static_cast<std::size_t>(
                parse_u64("cycles", p.options.at("cycles")))
          : 8;
  std::vector<unsigned> thread_counts = {1, 4};
  if (scn.threads != 0) thread_counts = {scn.threads};

  util::FaultInjector& inj = util::FaultInjector::global();
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;

  const auto sessions = scn.make_sessions();
  std::size_t live_sessions = 0;
  for (const auto& s : sessions) live_sessions += !s.program.tests.empty();
  const auto lib = scn.make_library();
  const std::size_t total_slots = live_sessions * lib.size();

  util::Rng rng(scn.seed ^ 0x0417EEull);
  util::CampaignStats stats;

  inj.disarm();
  sim::CampaignOptions ref_opts = scn.campaign_options(&stats);
  ref_opts.parallel = {1};
  const sim::OnlineResult reference = sim::run_online_detection_sessions(
      scn.system, scn.online, sessions, scn.bus, lib, ref_opts);

  for (const unsigned threads : thread_counts) {
    const std::string ckpt = (std::filesystem::temp_directory_path() /
                              ("xtest_ochaos_" + soc::to_string(scn.bus) +
                               "_t" + std::to_string(threads) + ".ckpt"))
                                 .string();
    std::remove(ckpt.c_str());

    sim::CampaignOptions opts = scn.campaign_options(&stats);
    opts.parallel = {threads};
    opts.cancel = &interrupt_flag();
    opts.checkpoint_path = ckpt;
    opts.checkpoint_key = sim::online_checkpoint_key(
        scn.bus, lib, scn.online, scn.system.electrical);
    opts.checkpoint_every = 2;  // small, so a hard crash loses little

    ChaosOutcome oc;
    while (oc.kills < cycles) {
      const std::uint64_t at = 1 + rng.below(total_slots);
      const bool hard = rng.below(2) == 0;
      inj.configure((hard ? "campaign.crash@" : "campaign.kill@") +
                    std::to_string(at) + ":" +
                    std::to_string(rng.below(1u << 30)));
      try {
        const sim::OnlineResult det = sim::run_online_detection_sessions(
            scn.system, scn.online, sessions, scn.bus, lib, opts);
        inj.disarm();
        if (det.verdicts != reference.verdicts ||
            det.outcomes != reference.outcomes) {
          err << "error: chaos: completed on-line campaign diverged from "
                 "the uninterrupted reference (threads="
              << threads << ")\n";
          return kExitSim;
        }
        ++oc.completions;
        std::remove(ckpt.c_str());  // start a fresh kill chain
      } catch (const sim::CampaignInterrupted&) {
        if (interrupt_flag().load()) throw;  // the operator, not us
        ++oc.kills;
        oc.crashes += hard;
        if (oc.kills % 3 == 0) {
          std::error_code ec;
          const auto size = std::filesystem::file_size(ckpt, ec);
          if (!ec && size > 0) {
            std::filesystem::resize_file(ckpt, rng.below(size), ec);
            if (!ec) ++oc.truncations;
          }
        }
      }
    }

    inj.disarm();
    const sim::OnlineResult finished = sim::run_online_detection_sessions(
        scn.system, scn.online, sessions, scn.bus, lib, opts);
    if (finished.verdicts != reference.verdicts ||
        finished.outcomes != reference.outcomes) {
      err << "error: chaos: resumed on-line campaign diverged from the "
             "uninterrupted reference (threads="
          << threads << ")\n";
      return kExitSim;
    }
    std::remove(ckpt.c_str());
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "chaos online bus=%s threads=%u: %zu kills (%zu hard), "
                  "%zu truncations, %zu clean completions, outcomes "
                  "identical\n",
                  soc::to_string(scn.bus).c_str(), threads, oc.kills,
                  oc.crashes, oc.truncations, oc.completions);
    out << buf;
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "online chaos soak passed: salvaged_sections=%zu "
                "dropped_slots=%zu restored=%zu\n",
                stats.salvaged_sections, stats.dropped_slots,
                stats.restored_from_checkpoint);
  out << buf;
  return kExitOk;
}

int cmd_chaos(const Parsed& p, std::ostream& out, std::ostream& err) {
  if (p.options.count("serve")) return cmd_chaos_serve(p, out, err);
  if (p.options.count("workers")) return cmd_chaos_workers(p, out, err);
  if (p.options.count("faults"))
    throw UsageError(
        "chaos: --faults requires --workers (the in-process soak drives "
        "the injector itself)");
  const bool has_scenario = p.options.count("scenario") != 0;
  spec::ScenarioSpec scn = base_scenario(p);
  if (!has_scenario) scn.defect_count = 12;  // chaos's own small default
  apply_overrides(p, scn);
  scn.validate();
  if (scn.online.enabled) return cmd_chaos_online(p, scn, out, err);

  // A scenario pins the soak to its own bus; flag-only invocations keep
  // sweeping all three.
  std::vector<soc::BusKind> buses = {soc::BusKind::kAddress,
                                     soc::BusKind::kData,
                                     soc::BusKind::kControl};
  if (p.options.count("bus"))
    buses = {parse_bus(p.options.at("bus"))};
  else if (has_scenario)
    buses = {scn.bus};
  const std::size_t defects = scn.defect_count;
  const std::uint64_t seed = scn.seed;
  const std::size_t cycles =
      p.options.count("cycles")
          ? static_cast<std::size_t>(
                parse_u64("cycles", p.options.at("cycles")))
          : 20;
  std::vector<unsigned> thread_counts = {1, 4};
  if (scn.threads != 0) thread_counts = {scn.threads};

  util::FaultInjector& inj = util::FaultInjector::global();
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;

  const soc::SystemConfig& cfg = scn.system;
  const auto sessions = scn.make_sessions();
  std::size_t live_sessions = 0;
  for (const auto& s : sessions) live_sessions += !s.program.tests.empty();

  util::Rng rng(seed ^ 0xC4A05ull);
  util::CampaignStats stats;

  for (const soc::BusKind bus : buses) {
    const auto lib =
        sim::make_defect_library(cfg, bus, defects, seed, scn.sigma_pct);
    const std::size_t total_slots = live_sessions * lib.size();
    inj.disarm();
    const std::vector<sim::Verdict> reference = sim::run_detection_sessions(
        cfg, sessions, bus, lib, scn.cycle_factor, {1});

    for (const unsigned threads : thread_counts) {
      const std::string ckpt =
          (std::filesystem::temp_directory_path() /
           ("xtest_chaos_" + soc::to_string(bus) + "_t" +
            std::to_string(threads) + ".ckpt"))
              .string();
      std::remove(ckpt.c_str());

      sim::CampaignOptions opts = scn.campaign_options(&stats);
      opts.parallel = {threads};
      opts.cancel = &interrupt_flag();
      opts.checkpoint_path = ckpt;
      opts.checkpoint_key = sim::default_checkpoint_key(bus, lib);
      opts.checkpoint_every = 3;  // small, so a hard crash loses little

      ChaosOutcome oc;
      while (oc.kills < cycles) {
        // Kill at an injector-chosen record; past the remaining work the
        // campaign simply completes (verified and restarted from empty).
        const std::uint64_t at = 1 + rng.below(total_slots);
        const bool hard = rng.below(2) == 0;
        inj.configure((hard ? "campaign.crash@" : "campaign.kill@") +
                      std::to_string(at) + ":" +
                      std::to_string(rng.below(1u << 30)));
        try {
          const std::vector<sim::Verdict> det =
              sim::run_detection_sessions(cfg, sessions, bus, lib, opts);
          inj.disarm();
          if (det != reference) {
            err << "error: chaos: completed campaign diverged from the "
                   "uninterrupted reference (bus="
                << soc::to_string(bus) << " threads=" << threads << ")\n";
            return kExitSim;
          }
          ++oc.completions;
          std::remove(ckpt.c_str());  // start a fresh kill chain
        } catch (const sim::CampaignInterrupted&) {
          if (interrupt_flag().load()) throw;  // the operator, not us
          ++oc.kills;
          oc.crashes += hard;
          // Every third kill also corrupts the checkpoint: truncate at a
          // random byte so resume exercises the salvage path.
          if (oc.kills % 3 == 0) {
            std::error_code ec;
            const auto size = std::filesystem::file_size(ckpt, ec);
            if (!ec && size > 0) {
              std::filesystem::resize_file(ckpt, rng.below(size), ec);
              if (!ec) ++oc.truncations;
            }
          }
        }
      }

      // Drain: no more kills, the chain must finish and match.
      inj.disarm();
      const std::vector<sim::Verdict> finished =
          sim::run_detection_sessions(cfg, sessions, bus, lib, opts);
      if (finished != reference) {
        err << "error: chaos: resumed campaign diverged from the "
               "uninterrupted reference (bus="
            << soc::to_string(bus) << " threads=" << threads << ")\n";
        return kExitSim;
      }
      std::remove(ckpt.c_str());
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "chaos bus=%s threads=%u: %zu kills (%zu hard), %zu "
                    "truncations, %zu clean completions, verdicts identical\n",
                    soc::to_string(bus).c_str(), threads, oc.kills,
                    oc.crashes, oc.truncations, oc.completions);
      out << buf;
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "chaos soak passed: salvaged_sections=%zu dropped_slots=%zu "
                "restored=%zu flush_failures=%zu\n",
                stats.salvaged_sections, stats.dropped_slots,
                stats.restored_from_checkpoint, stats.flush_failures);
  out << buf;
  return kExitOk;
}

}  // namespace

std::atomic<bool>& interrupt_flag() {
  static std::atomic<bool> flag{false};
  static_assert(std::atomic<bool>::is_always_lock_free,
                "signal handlers store to this flag");
  return flag;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    const CommandDef* cmd =
        args.empty() ? nullptr : find_command(args[0]);
    if (cmd == nullptr) return usage(err);
    const Parsed p = parse(*cmd, args);
    if (p.command == "generate") return cmd_generate(p, out);
    if (p.command == "assemble") return cmd_assemble(p, out);
    if (p.command == "disasm") return cmd_disasm(p, out);
    if (p.command == "run") return cmd_run(p, out);
    if (p.command == "campaign") return cmd_campaign(p, out, err);
    if (p.command == "chaos") return cmd_chaos(p, out, err);
    if (p.command == "serve") return cmd_serve(p, out, err);
    if (p.command == "submit") return cmd_submit(p, out, err);
    if (p.command == "scenarios") return cmd_scenarios(p, out);
    return usage(err);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << '\n';
    return kExitUsage;
  } catch (const spec::SpecParseError& e) {
    // Malformed scenario text / unknown scenario name: the operator's
    // input is wrong, same bucket as a bad flag.
    err << "error: " << e.what() << '\n';
    return kExitUsage;
  } catch (const spec::SpecIoError& e) {
    err << "error: " << e.what() << '\n';
    return kExitIo;
  } catch (const IoError& e) {
    err << "error: " << e.what() << '\n';
    return kExitIo;
  } catch (const sim::CampaignInterrupted& e) {
    err << "interrupted: " << e.what() << '\n';
    return kExitInterrupted;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return kExitSim;
  } catch (...) {
    err << "error: unknown failure\n";
    return kExitSim;
  }
}

}  // namespace xtest::cli
