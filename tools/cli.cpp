#include "tools/cli.h"

#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "cpu/assembler.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/serialize.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "soc/waveform.h"
#include "util/parallel.h"
#include "util/table.h"

namespace xtest::cli {

namespace {

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key [value]
};

Parsed parse(const std::vector<std::string>& args) {
  Parsed p;
  if (!args.empty()) p.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Flags with values: peek at the next token.
      if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        p.options[key] = args[++i];
      } else {
        p.options[key] = "";
      }
    } else {
      p.positional.push_back(a);
    }
  }
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  xtest generate [--sessions] [--out PREFIX]\n"
         "  xtest assemble FILE.s [--out FILE.img]\n"
         "  xtest disasm FILE.img\n"
         "  xtest run FILE.img --entry ADDR [--trace] [--max-cycles N]\n"
         "  xtest campaign [--bus addr|data|ctrl] [--defects N] [--seed S]\n"
         "                 [--threads T]   (0 = auto / $XTEST_THREADS)\n";
  return 2;
}

soc::BusKind parse_bus(const std::string& name) {
  if (name == "addr" || name == "address") return soc::BusKind::kAddress;
  if (name == "data") return soc::BusKind::kData;
  if (name == "ctrl" || name == "control") return soc::BusKind::kControl;
  throw std::runtime_error("unknown bus '" + name + "'");
}

int cmd_generate(const Parsed& p, std::ostream& out) {
  sbst::GeneratorConfig cfg;
  std::vector<sbst::GenerationResult> sessions;
  if (p.options.count("sessions")) {
    sessions = sbst::TestProgramGenerator::generate_sessions(cfg);
  } else {
    sessions.push_back(sbst::TestProgramGenerator(cfg).generate());
  }
  const std::string prefix = p.options.count("out")
                                 ? p.options.at("out")
                                 : std::string();
  util::Table t({"session", "tests", "unplaced", "bytes", "entry"});
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    char entry[16];
    std::snprintf(entry, sizeof entry, "0x%03x", r.program.entry);
    t.add_row({std::to_string(s), std::to_string(r.program.tests.size()),
               std::to_string(r.unplaced.size()),
               std::to_string(r.program.program_bytes()), entry});
    if (!prefix.empty()) {
      write_file(prefix + std::to_string(s) + ".img",
                 sim::image_to_text(r.program.image));
    }
  }
  out << t.render();
  if (!prefix.empty())
    out << "images written to " << prefix << "<N>.img\n";
  return 0;
}

int cmd_assemble(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw std::runtime_error("assemble: missing source file");
  const cpu::AsmResult r = cpu::assemble(read_file(p.positional[0]));
  const std::string text = sim::image_to_text(r.image);
  if (p.options.count("out")) {
    write_file(p.options.at("out"), text);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu bytes, entry 0x%03x\n",
                  r.image.defined_count(), r.entry);
    out << buf;
  } else {
    out << text;
  }
  return 0;
}

int cmd_disasm(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw std::runtime_error("disasm: missing image file");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  out << cpu::disassemble_image(img);
  return 0;
}

int cmd_run(const Parsed& p, std::ostream& out) {
  if (p.positional.empty())
    throw std::runtime_error("run: missing image file");
  if (!p.options.count("entry"))
    throw std::runtime_error("run: --entry required");
  const cpu::MemoryImage img =
      sim::image_from_text(read_file(p.positional[0]));
  const auto entry = static_cast<cpu::Addr>(
      std::stoul(p.options.at("entry"), nullptr, 0));
  const std::uint64_t max_cycles =
      p.options.count("max-cycles")
          ? std::stoull(p.options.at("max-cycles"))
          : 1'000'000;

  soc::System sys;
  soc::BusTrace trace;
  if (p.options.count("trace")) sys.set_trace(&trace);
  sys.load_and_reset(img, entry);
  const soc::RunResult r = sys.run(max_cycles);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "halted=%d reason=%s cycles=%llu acc=0x%02x\n", r.halted,
                r.reason == cpu::HaltReason::kHltInstruction ? "hlt"
                : r.reason == cpu::HaltReason::kIllegalOpcode
                    ? "illegal"
                    : "running",
                static_cast<unsigned long long>(r.cycles),
                sys.processor().acc());
  out << buf;
  if (p.options.count("trace")) {
    out << "\naddress bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kAddress)
        << "\ndata bus:\n"
        << soc::render_waveform(trace, soc::BusKind::kData);
  }
  return 0;
}

int cmd_campaign(const Parsed& p, std::ostream& out) {
  const soc::BusKind bus = parse_bus(
      p.options.count("bus") ? p.options.at("bus") : "addr");
  const std::size_t defects =
      p.options.count("defects")
          ? static_cast<std::size_t>(std::stoull(p.options.at("defects")))
          : 200;
  const std::uint64_t seed =
      p.options.count("seed") ? std::stoull(p.options.at("seed"))
                              : 20010618ull;
  util::ParallelConfig par = util::ParallelConfig::from_env();
  if (p.options.count("threads"))
    par.threads =
        static_cast<unsigned>(std::stoul(p.options.at("threads")));

  const soc::SystemConfig cfg;
  const auto lib = sim::make_defect_library(cfg, bus, defects, seed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  util::CampaignStats stats;
  const auto det =
      sim::run_detection_sessions(cfg, sessions, bus, lib, 16, par, &stats);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "bus=%s defects=%zu coverage=%.1f%% (seed %llu)\n"
                "threads=%u simulations=%zu cycles=%llu wall=%.3fs "
                "defects/sec=%.0f\n",
                soc::to_string(bus).c_str(), lib.size(),
                100.0 * sim::coverage(det),
                static_cast<unsigned long long>(seed), stats.threads,
                stats.defects_simulated,
                static_cast<unsigned long long>(stats.simulated_cycles),
                stats.wall_seconds, stats.defects_per_second());
  out << buf;
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  const Parsed p = parse(args);
  try {
    if (p.command == "generate") return cmd_generate(p, out);
    if (p.command == "assemble") return cmd_assemble(p, out);
    if (p.command == "disasm") return cmd_disasm(p, out);
    if (p.command == "run") return cmd_run(p, out);
    if (p.command == "campaign") return cmd_campaign(p, out);
    return usage(err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace xtest::cli
