#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return xtest::cli::run(args, std::cout, std::cerr);
}
