#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

// cli::run already maps every failure to an exit code, but keep a belt
// here so a bug in that mapping can never escalate to std::terminate.
int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return xtest::cli::run(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return xtest::cli::kExitSim;
  } catch (...) {
    std::cerr << "error: unknown failure\n";
    return xtest::cli::kExitSim;
  }
}
