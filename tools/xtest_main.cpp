#include <csignal>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

namespace {

// Async-signal-safe by construction: the only thing the handler does is
// store to a lock-free atomic.  Campaign workers poll the flag between
// defect simulations, flush a final checkpoint, and the process exits
// with cli::kExitInterrupted (5) so wrappers can tell "interrupted,
// resumable" from a real failure.  A second signal while the flush is
// still running falls back to the default disposition (kill now).
extern "C" void request_shutdown(int sig) {
  xtest::cli::interrupt_flag().store(true);
  std::signal(sig, SIG_DFL);
}

}  // namespace

// cli::run already maps every failure to an exit code, but keep a belt
// here so a bug in that mapping can never escalate to std::terminate.
int main(int argc, char** argv) {
  std::signal(SIGINT, request_shutdown);
  std::signal(SIGTERM, request_shutdown);
  // A serve client retransmitting into a daemon that was SIGKILLed (or a
  // daemon streaming to a client that vanished) must see EPIPE, not die
  // silently from SIGPIPE.  Socket writes also pass MSG_NOSIGNAL; this is
  // the belt for any fd that is not a socket.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    return xtest::cli::run(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return xtest::cli::kExitSim;
  } catch (...) {
    std::cerr << "error: unknown failure\n";
    return xtest::cli::kExitSim;
  }
}
