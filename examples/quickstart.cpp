// Quickstart: generate a crosstalk self-test program for the CPU-memory
// system, verify every test observes its target fault, and watch one
// injected defect get caught.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "spec/scenario.h"
#include "xtalk/defect.h"

using namespace xtest;

int main() {
  // 1. The system under test: PARWAN-style CPU, 4K memory, 12-bit address
  //    bus, 8-bit bidirectional data bus (Section 4 of the paper).  The
  //    whole experiment is described by one declarative scenario spec.
  const spec::ScenarioSpec scn = spec::builtin_scenario("paper-baseline");
  const soc::SystemConfig& syscfg = scn.system;
  soc::System system(syscfg);
  std::printf("system: addr bus %u wires (Cth %.1f fF), data bus %u wires "
              "(Cth %.1f fF)\n",
              system.nominal_address_network().width(), system.address_cth(),
              system.nominal_data_network().width(), system.data_cth());

  // 2. Generate the self-test program: MA tests for all 48 address-bus and
  //    64 data-bus MAFs, response compaction included.
  const sbst::GeneratorConfig& gencfg = scn.program;
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(gencfg).generate();
  std::printf("program: %zu tests placed, %zu unplaced (address conflicts), "
              "%zu bytes, %zu response cells\n",
              gen.program.tests.size(), gen.unplaced.size(),
              gen.program.program_bytes(), gen.program.response_cells.size());

  // 3. Verify: for each planned test, force the matching ideal MAF and
  //    check the tester-visible response diverges from the gold run.
  const sim::VerificationResult ver = sim::verify_program(gen.program, syscfg);
  std::printf("gold run: %llu cycles, completed=%d\n",
              static_cast<unsigned long long>(ver.gold.cycles),
              ver.gold.completed);
  std::printf("verification: %zu/%zu tests observe their fault\n",
              gen.program.tests.size() - ver.ineffective.size(),
              gen.program.tests.size());
  for (std::size_t i : ver.ineffective)
    std::printf("  ineffective: %s (%s)\n",
                gen.program.tests[i].fault.label().c_str(),
                sbst::to_string(gen.program.tests[i].scheme).c_str());

  // 4. Inject one physical defect -- a 3x blow-up of the coupling between
  //    address wires 5 and 6 -- and run the self-test under it.
  xtalk::RcNetwork bad = system.nominal_address_network();
  bad.scale_coupling(5, 6, 3.0);
  std::printf("defect: addr wires 5-6 coupling x3; net coupling on wire 5 = "
              "%.1f fF (Cth %.1f)\n",
              bad.net_coupling(5), system.address_cth());

  soc::System dut(syscfg);
  const sim::ResponseSnapshot gold =
      sim::run_and_capture(dut, gen.program, 1'000'000);
  dut.set_address_network(bad);
  const sim::ResponseSnapshot faulty =
      sim::run_and_capture(dut, gen.program, 1'000'000);
  std::printf("defective chip %s\n",
              faulty.matches(gold) ? "PASSED (escape!)" : "DETECTED");
  return faulty.matches(gold) ? 1 : 0;
}
