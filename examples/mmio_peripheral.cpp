// Testing CPU-to-peripheral interconnect via memory-mapped I/O.
//
// Section 3: "since the cores in a SoC are often addressable by the CPU
// via memory-mapped I/O, the same test strategy can be extended to test
// address/data busses between any CPU-core pair."  This example maps a
// register-file core at page 14 and hand-writes MA-pair applications to
// the data bus towards the core, the way Section 4 writes them for the
// memory -- including the Section 3.2 caveat about cores whose registers
// cannot hold arbitrary values (a ROM core).
//
//   $ ./examples/mmio_peripheral

#include <cstdio>
#include <string>

#include "cpu/assembler.h"
#include "soc/system.h"
#include "spec/scenario.h"
#include "xtalk/maf.h"

using namespace xtest;

namespace {

/// Builds a program applying the cpu->core MA pair (v1, v2) of `fault` to
/// the data bus through a STA into the peripheral window, then reading it
/// back into a response cell.
std::string core_write_test(const xtalk::MafFault& fault) {
  const xtalk::VectorPair p = xtalk::ma_test(8, fault);
  const unsigned v1 = static_cast<unsigned>(p.v1.bits());
  const unsigned v2 = static_cast<unsigned>(p.v2.bits());
  std::string src;
  src += "        .org 0x020\n";
  src += "        lda src\n";                                 // ACC = v2
  src += "        sta 14:" + std::to_string(v1) + "\n";       // pair applied
  src += "        lda 14:" + std::to_string(v1) + "\n";       // read back
  src += "        sta resp\n";
  src += "        hlt\n";
  src += "        .org 0x200\nresp:   .res 1\n";
  src += "        .org 0x210\nsrc:    .byte " + std::to_string(v2) + "\n";
  return src;
}

void demo_register_core() {
  std::printf("--- register-file core at page 14 ---\n");
  for (xtalk::MafType type : xtalk::kAllMafTypes) {
    const xtalk::MafFault fault{2, type, xtalk::BusDirection::kCpuToCore};
    const cpu::AsmResult prog = cpu::assemble(core_write_test(fault));

    soc::System sys(spec::builtin_scenario("paper-baseline").system);
    soc::RegisterFileDevice dev(256);
    sys.attach_mmio(0xE00, 256, &dev);

    sys.load_and_reset(prog.image, prog.entry);
    sys.run(1000);
    const std::uint8_t pass = sys.memory().read(0x200);

    sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kData, fault});
    sys.load_and_reset(prog.image, prog.entry);
    sys.run(1000);
    const std::uint8_t fail = sys.memory().read(0x200);

    std::printf("  %-14s pass resp=0x%02x  faulty resp=0x%02x  -> %s\n",
                fault.label().c_str(), pass, fail,
                pass != fail ? "DETECTED" : "escaped");
  }
}

void demo_rom_core() {
  // Section 3.2: "v2 may correspond to ... read-only locations".  Writes
  // towards a ROM core still toggle the data bus (the pair is applied!),
  // but the response must be collected from the bus-level effect on a
  // different observation path -- here we read the ROM back and observe
  // the *read* direction instead.
  std::printf("\n--- ROM core: writes ignored, read direction tested ---\n");
  const cpu::AsmResult prog = cpu::assemble(R"(
        .org 0x020
        lda 14:0x00    ; offset byte 0x00 = v1; ROM returns v2
        sta resp
        hlt
        .org 0x200
resp:   .res 1
  )");
  soc::System sys(spec::builtin_scenario("paper-baseline").system);
  soc::RomDevice rom({0xFE});  // v2 of gp@1, fixed by the core's contents
  sys.attach_mmio(0xE00, 256, &rom);

  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const std::uint8_t pass = sys.memory().read(0x200);

  const xtalk::MafFault fault{0, xtalk::MafType::kPositiveGlitch,
                              xtalk::BusDirection::kCoreToCpu};
  sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kData, fault});
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const std::uint8_t fail = sys.memory().read(0x200);
  std::printf("  %-14s pass resp=0x%02x  faulty resp=0x%02x  -> %s\n",
              fault.label().c_str(), pass, fail,
              pass != fail ? "DETECTED" : "escaped");
}

}  // namespace

int main() {
  std::printf("CPU <-> peripheral-core interconnect testing via "
              "memory-mapped I/O\n\n");
  demo_register_core();
  demo_rom_core();
  return 0;
}
