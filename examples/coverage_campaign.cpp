// Full defect-coverage campaign (the paper's Fig. 9 flow) on both buses.
//
//   $ ./examples/coverage_campaign [defect_count] [seed]
//
// Generates the self-test program set, builds a defect library per bus,
// simulates every defect through the whole program, and prints Fig.-11
// style per-line coverage plus the overall numbers.

#include <cstdio>
#include <cstdlib>

#include "sim/campaign.h"
#include "spec/scenario.h"
#include "util/table.h"

using namespace xtest;

namespace {

void run_bus(const spec::ScenarioSpec& scn, soc::BusKind bus) {
  const soc::SystemConfig& cfg = scn.system;
  const unsigned width =
      bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
  std::printf("\n--- %s bus (%u wires) ---\n", soc::to_string(bus).c_str(),
              width);
  const auto lib =
      sim::make_defect_library(cfg, bus, scn.defect_count, scn.seed,
                               scn.sigma_pct);
  std::printf("library: %zu defects from %zu candidates (Cth %.1f fF)\n",
              lib.size(), lib.attempts(), lib.config().cth_fF);

  const sim::PerLineCoverage cov =
      sim::per_line_coverage(cfg, bus, lib, scn.program);
  util::Table t({"line", "tests", "individual", "cumulative"});
  for (unsigned i = 0; i < width; ++i)
    t.add_row({std::to_string(i + 1), std::to_string(cov.tests_placed[i]),
               util::Table::pct(cov.individual[i]),
               util::Table::pct(cov.cumulative[i])});
  std::printf("%s", t.render().c_str());
  std::printf("overall coverage: %s\n", util::Table::pct(cov.overall).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec scn = spec::builtin_scenario("paper-baseline");
  scn.defect_count =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  scn.seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 20010618;

  std::printf("CPU-memory system: 12-bit address bus, 8-bit data bus, "
              "4K memory\n");
  run_bus(scn, soc::BusKind::kAddress);
  scn.seed += 1;
  run_bus(scn, soc::BusKind::kData);
  return 0;
}
