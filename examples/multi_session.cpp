// Multi-session conflict resolution (Section 5).
//
//   "Some of the tests cannot be applied due to address conflicts -- i.e.,
//    multiple tests compete for the same instruction address.  This
//    problem can be solved by separating conflicting tests into multiple
//    test programs, which can be executed in different sessions."
//
// Shows which address-bus MA tests land in which session, which placement
// scheme realised each, and what (if anything) can never be placed.
//
//   $ ./examples/multi_session

#include <algorithm>
#include <cstdio>

#include "sbst/generator.h"
#include "sim/verify.h"
#include "spec/scenario.h"
#include "util/table.h"

using namespace xtest;

int main() {
  sbst::GeneratorConfig cfg =
      spec::builtin_scenario("paper-baseline").program;
  cfg.include_data_bus = false;  // focus on the conflict-prone address bus
  const auto sessions = sbst::TestProgramGenerator::generate_sessions(cfg);

  // Per-fault session map.
  util::Table t({"MA test", "session", "scheme", "group", "effective"});
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    const sim::VerificationResult ver = sim::verify_program(r.program);
    for (std::size_t i = 0; i < r.program.tests.size(); ++i) {
      const auto& test = r.program.tests[i];
      const bool eff =
          std::find(ver.ineffective.begin(), ver.ineffective.end(), i) ==
          ver.ineffective.end();
      t.add_row({test.fault.label(), std::to_string(s),
                 sbst::to_string(test.scheme),
                 test.group >= 0 ? std::to_string(test.group) : "-",
                 eff ? "yes" : "NO"});
    }
  }
  std::printf("%s", t.render().c_str());

  std::size_t placed = 0;
  for (const auto& s : sessions) placed += s.program.tests.size();
  std::printf("\n%zu/48 address-bus MA tests placed across %zu sessions "
              "(paper: 41/48)\n",
              placed, sessions.size());
  for (const auto& u : sessions.back().unplaced)
    std::printf("never placeable: %s (%s)\n", u.fault.label().c_str(),
                u.reason.c_str());

  // Show why multi-session helps: session 0 alone vs the union.
  std::printf("\nsession 0 alone applies %zu tests; the remaining %zu "
              "require fresh address space because their instruction "
              "placements collide with already-placed fragments.\n",
              sessions[0].program.tests.size(),
              placed - sessions[0].program.tests.size());
  return 0;
}
