# Empty dependencies file for mmio_peripheral.
# This may be replaced when dependencies are built.
