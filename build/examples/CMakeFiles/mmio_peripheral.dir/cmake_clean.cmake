file(REMOVE_RECURSE
  "CMakeFiles/mmio_peripheral.dir/mmio_peripheral.cpp.o"
  "CMakeFiles/mmio_peripheral.dir/mmio_peripheral.cpp.o.d"
  "mmio_peripheral"
  "mmio_peripheral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmio_peripheral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
