
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mmio_peripheral.cpp" "examples/CMakeFiles/mmio_peripheral.dir/mmio_peripheral.cpp.o" "gcc" "examples/CMakeFiles/mmio_peripheral.dir/mmio_peripheral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwbist/CMakeFiles/xtest_hwbist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xtest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sbst/CMakeFiles/xtest_sbst.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/xtest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/xtest_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/xtalk/CMakeFiles/xtest_xtalk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xtest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
