file(REMOVE_RECURSE
  "CMakeFiles/coverage_campaign.dir/coverage_campaign.cpp.o"
  "CMakeFiles/coverage_campaign.dir/coverage_campaign.cpp.o.d"
  "coverage_campaign"
  "coverage_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
