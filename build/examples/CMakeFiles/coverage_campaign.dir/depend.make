# Empty dependencies file for coverage_campaign.
# This may be replaced when dependencies are built.
