# Empty compiler generated dependencies file for multi_session.
# This may be replaced when dependencies are built.
