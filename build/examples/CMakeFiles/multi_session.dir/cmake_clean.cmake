file(REMOVE_RECURSE
  "CMakeFiles/multi_session.dir/multi_session.cpp.o"
  "CMakeFiles/multi_session.dir/multi_session.cpp.o.d"
  "multi_session"
  "multi_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
