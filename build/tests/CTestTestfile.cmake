# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_maf[1]_include.cmake")
include("/root/repo/build/tests/test_rc_network[1]_include.cmake")
include("/root/repo/build/tests/test_error_model[1]_include.cmake")
include("/root/repo/build/tests/test_defect[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_campaign[1]_include.cmake")
include("/root/repo/build/tests/test_hwbist[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_transient[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_random_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_control_bus[1]_include.cmake")
include("/root/repo/build/tests/test_interbus[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_atspeed[1]_include.cmake")
