# Empty dependencies file for test_interbus.
# This may be replaced when dependencies are built.
