file(REMOVE_RECURSE
  "CMakeFiles/test_interbus.dir/test_interbus.cpp.o"
  "CMakeFiles/test_interbus.dir/test_interbus.cpp.o.d"
  "test_interbus"
  "test_interbus.pdb"
  "test_interbus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
