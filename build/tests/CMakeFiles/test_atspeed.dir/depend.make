# Empty dependencies file for test_atspeed.
# This may be replaced when dependencies are built.
