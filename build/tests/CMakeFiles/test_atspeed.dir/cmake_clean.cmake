file(REMOVE_RECURSE
  "CMakeFiles/test_atspeed.dir/test_atspeed.cpp.o"
  "CMakeFiles/test_atspeed.dir/test_atspeed.cpp.o.d"
  "test_atspeed"
  "test_atspeed.pdb"
  "test_atspeed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
