# Empty dependencies file for test_hwbist.
# This may be replaced when dependencies are built.
