file(REMOVE_RECURSE
  "CMakeFiles/test_hwbist.dir/test_hwbist.cpp.o"
  "CMakeFiles/test_hwbist.dir/test_hwbist.cpp.o.d"
  "test_hwbist"
  "test_hwbist.pdb"
  "test_hwbist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwbist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
