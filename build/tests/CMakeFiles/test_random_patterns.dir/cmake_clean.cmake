file(REMOVE_RECURSE
  "CMakeFiles/test_random_patterns.dir/test_random_patterns.cpp.o"
  "CMakeFiles/test_random_patterns.dir/test_random_patterns.cpp.o.d"
  "test_random_patterns"
  "test_random_patterns.pdb"
  "test_random_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
