# Empty dependencies file for test_random_patterns.
# This may be replaced when dependencies are built.
