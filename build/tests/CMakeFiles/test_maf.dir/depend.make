# Empty dependencies file for test_maf.
# This may be replaced when dependencies are built.
