file(REMOVE_RECURSE
  "CMakeFiles/test_maf.dir/test_maf.cpp.o"
  "CMakeFiles/test_maf.dir/test_maf.cpp.o.d"
  "test_maf"
  "test_maf.pdb"
  "test_maf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
