# Empty compiler generated dependencies file for test_control_bus.
# This may be replaced when dependencies are built.
