file(REMOVE_RECURSE
  "CMakeFiles/test_control_bus.dir/test_control_bus.cpp.o"
  "CMakeFiles/test_control_bus.dir/test_control_bus.cpp.o.d"
  "test_control_bus"
  "test_control_bus.pdb"
  "test_control_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
