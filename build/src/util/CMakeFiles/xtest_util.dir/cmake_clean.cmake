file(REMOVE_RECURSE
  "CMakeFiles/xtest_util.dir/bitvec.cpp.o"
  "CMakeFiles/xtest_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/xtest_util.dir/table.cpp.o"
  "CMakeFiles/xtest_util.dir/table.cpp.o.d"
  "libxtest_util.a"
  "libxtest_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
