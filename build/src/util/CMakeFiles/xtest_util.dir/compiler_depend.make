# Empty compiler generated dependencies file for xtest_util.
# This may be replaced when dependencies are built.
