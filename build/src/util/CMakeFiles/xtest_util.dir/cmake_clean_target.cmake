file(REMOVE_RECURSE
  "libxtest_util.a"
)
