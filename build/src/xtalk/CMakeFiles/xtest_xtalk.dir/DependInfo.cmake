
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xtalk/defect.cpp" "src/xtalk/CMakeFiles/xtest_xtalk.dir/defect.cpp.o" "gcc" "src/xtalk/CMakeFiles/xtest_xtalk.dir/defect.cpp.o.d"
  "/root/repo/src/xtalk/error_model.cpp" "src/xtalk/CMakeFiles/xtest_xtalk.dir/error_model.cpp.o" "gcc" "src/xtalk/CMakeFiles/xtest_xtalk.dir/error_model.cpp.o.d"
  "/root/repo/src/xtalk/maf.cpp" "src/xtalk/CMakeFiles/xtest_xtalk.dir/maf.cpp.o" "gcc" "src/xtalk/CMakeFiles/xtest_xtalk.dir/maf.cpp.o.d"
  "/root/repo/src/xtalk/rc_network.cpp" "src/xtalk/CMakeFiles/xtest_xtalk.dir/rc_network.cpp.o" "gcc" "src/xtalk/CMakeFiles/xtest_xtalk.dir/rc_network.cpp.o.d"
  "/root/repo/src/xtalk/transient.cpp" "src/xtalk/CMakeFiles/xtest_xtalk.dir/transient.cpp.o" "gcc" "src/xtalk/CMakeFiles/xtest_xtalk.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xtest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
