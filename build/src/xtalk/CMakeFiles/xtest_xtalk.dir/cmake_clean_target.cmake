file(REMOVE_RECURSE
  "libxtest_xtalk.a"
)
