# Empty compiler generated dependencies file for xtest_xtalk.
# This may be replaced when dependencies are built.
