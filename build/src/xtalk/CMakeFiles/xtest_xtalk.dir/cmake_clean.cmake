file(REMOVE_RECURSE
  "CMakeFiles/xtest_xtalk.dir/defect.cpp.o"
  "CMakeFiles/xtest_xtalk.dir/defect.cpp.o.d"
  "CMakeFiles/xtest_xtalk.dir/error_model.cpp.o"
  "CMakeFiles/xtest_xtalk.dir/error_model.cpp.o.d"
  "CMakeFiles/xtest_xtalk.dir/maf.cpp.o"
  "CMakeFiles/xtest_xtalk.dir/maf.cpp.o.d"
  "CMakeFiles/xtest_xtalk.dir/rc_network.cpp.o"
  "CMakeFiles/xtest_xtalk.dir/rc_network.cpp.o.d"
  "CMakeFiles/xtest_xtalk.dir/transient.cpp.o"
  "CMakeFiles/xtest_xtalk.dir/transient.cpp.o.d"
  "libxtest_xtalk.a"
  "libxtest_xtalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_xtalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
