file(REMOVE_RECURSE
  "libxtest_hwbist.a"
)
