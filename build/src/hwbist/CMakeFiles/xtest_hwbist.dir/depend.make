# Empty dependencies file for xtest_hwbist.
# This may be replaced when dependencies are built.
