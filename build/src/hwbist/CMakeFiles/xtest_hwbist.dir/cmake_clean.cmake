file(REMOVE_RECURSE
  "CMakeFiles/xtest_hwbist.dir/bist.cpp.o"
  "CMakeFiles/xtest_hwbist.dir/bist.cpp.o.d"
  "CMakeFiles/xtest_hwbist.dir/overtest.cpp.o"
  "CMakeFiles/xtest_hwbist.dir/overtest.cpp.o.d"
  "CMakeFiles/xtest_hwbist.dir/random_patterns.cpp.o"
  "CMakeFiles/xtest_hwbist.dir/random_patterns.cpp.o.d"
  "libxtest_hwbist.a"
  "libxtest_hwbist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_hwbist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
