# CMake generated Testfile for 
# Source directory: /root/repo/src/sbst
# Build directory: /root/repo/build/src/sbst
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
