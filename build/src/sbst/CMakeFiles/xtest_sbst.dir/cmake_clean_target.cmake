file(REMOVE_RECURSE
  "libxtest_sbst.a"
)
