file(REMOVE_RECURSE
  "CMakeFiles/xtest_sbst.dir/generator.cpp.o"
  "CMakeFiles/xtest_sbst.dir/generator.cpp.o.d"
  "CMakeFiles/xtest_sbst.dir/layout.cpp.o"
  "CMakeFiles/xtest_sbst.dir/layout.cpp.o.d"
  "CMakeFiles/xtest_sbst.dir/program.cpp.o"
  "CMakeFiles/xtest_sbst.dir/program.cpp.o.d"
  "libxtest_sbst.a"
  "libxtest_sbst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_sbst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
