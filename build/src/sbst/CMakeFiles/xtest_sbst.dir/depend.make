# Empty dependencies file for xtest_sbst.
# This may be replaced when dependencies are built.
