
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/xtest_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/xtest_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/diagnosis.cpp" "src/sim/CMakeFiles/xtest_sim.dir/diagnosis.cpp.o" "gcc" "src/sim/CMakeFiles/xtest_sim.dir/diagnosis.cpp.o.d"
  "/root/repo/src/sim/serialize.cpp" "src/sim/CMakeFiles/xtest_sim.dir/serialize.cpp.o" "gcc" "src/sim/CMakeFiles/xtest_sim.dir/serialize.cpp.o.d"
  "/root/repo/src/sim/signature.cpp" "src/sim/CMakeFiles/xtest_sim.dir/signature.cpp.o" "gcc" "src/sim/CMakeFiles/xtest_sim.dir/signature.cpp.o.d"
  "/root/repo/src/sim/verify.cpp" "src/sim/CMakeFiles/xtest_sim.dir/verify.cpp.o" "gcc" "src/sim/CMakeFiles/xtest_sim.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sbst/CMakeFiles/xtest_sbst.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/xtest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/xtalk/CMakeFiles/xtest_xtalk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xtest_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/xtest_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
