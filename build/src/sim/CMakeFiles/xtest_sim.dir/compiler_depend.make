# Empty compiler generated dependencies file for xtest_sim.
# This may be replaced when dependencies are built.
