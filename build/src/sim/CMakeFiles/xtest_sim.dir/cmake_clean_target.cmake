file(REMOVE_RECURSE
  "libxtest_sim.a"
)
