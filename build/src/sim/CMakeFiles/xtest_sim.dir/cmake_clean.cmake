file(REMOVE_RECURSE
  "CMakeFiles/xtest_sim.dir/campaign.cpp.o"
  "CMakeFiles/xtest_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/xtest_sim.dir/diagnosis.cpp.o"
  "CMakeFiles/xtest_sim.dir/diagnosis.cpp.o.d"
  "CMakeFiles/xtest_sim.dir/serialize.cpp.o"
  "CMakeFiles/xtest_sim.dir/serialize.cpp.o.d"
  "CMakeFiles/xtest_sim.dir/signature.cpp.o"
  "CMakeFiles/xtest_sim.dir/signature.cpp.o.d"
  "CMakeFiles/xtest_sim.dir/verify.cpp.o"
  "CMakeFiles/xtest_sim.dir/verify.cpp.o.d"
  "libxtest_sim.a"
  "libxtest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
