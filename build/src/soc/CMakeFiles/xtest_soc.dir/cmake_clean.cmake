file(REMOVE_RECURSE
  "CMakeFiles/xtest_soc.dir/bus.cpp.o"
  "CMakeFiles/xtest_soc.dir/bus.cpp.o.d"
  "CMakeFiles/xtest_soc.dir/system.cpp.o"
  "CMakeFiles/xtest_soc.dir/system.cpp.o.d"
  "CMakeFiles/xtest_soc.dir/trace.cpp.o"
  "CMakeFiles/xtest_soc.dir/trace.cpp.o.d"
  "CMakeFiles/xtest_soc.dir/waveform.cpp.o"
  "CMakeFiles/xtest_soc.dir/waveform.cpp.o.d"
  "libxtest_soc.a"
  "libxtest_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
