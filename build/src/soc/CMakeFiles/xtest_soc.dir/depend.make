# Empty dependencies file for xtest_soc.
# This may be replaced when dependencies are built.
