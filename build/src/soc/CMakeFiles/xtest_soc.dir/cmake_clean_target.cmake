file(REMOVE_RECURSE
  "libxtest_soc.a"
)
