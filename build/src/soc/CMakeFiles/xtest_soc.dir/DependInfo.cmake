
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/bus.cpp" "src/soc/CMakeFiles/xtest_soc.dir/bus.cpp.o" "gcc" "src/soc/CMakeFiles/xtest_soc.dir/bus.cpp.o.d"
  "/root/repo/src/soc/system.cpp" "src/soc/CMakeFiles/xtest_soc.dir/system.cpp.o" "gcc" "src/soc/CMakeFiles/xtest_soc.dir/system.cpp.o.d"
  "/root/repo/src/soc/trace.cpp" "src/soc/CMakeFiles/xtest_soc.dir/trace.cpp.o" "gcc" "src/soc/CMakeFiles/xtest_soc.dir/trace.cpp.o.d"
  "/root/repo/src/soc/waveform.cpp" "src/soc/CMakeFiles/xtest_soc.dir/waveform.cpp.o" "gcc" "src/soc/CMakeFiles/xtest_soc.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/xtest_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/xtalk/CMakeFiles/xtest_xtalk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xtest_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
