# Empty dependencies file for xtest_cpu.
# This may be replaced when dependencies are built.
