file(REMOVE_RECURSE
  "CMakeFiles/xtest_cpu.dir/assembler.cpp.o"
  "CMakeFiles/xtest_cpu.dir/assembler.cpp.o.d"
  "CMakeFiles/xtest_cpu.dir/cpu.cpp.o"
  "CMakeFiles/xtest_cpu.dir/cpu.cpp.o.d"
  "CMakeFiles/xtest_cpu.dir/isa.cpp.o"
  "CMakeFiles/xtest_cpu.dir/isa.cpp.o.d"
  "libxtest_cpu.a"
  "libxtest_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
