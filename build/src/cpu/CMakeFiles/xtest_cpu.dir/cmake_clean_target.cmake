file(REMOVE_RECURSE
  "libxtest_cpu.a"
)
