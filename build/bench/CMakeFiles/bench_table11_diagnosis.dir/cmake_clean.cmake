file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_diagnosis.dir/bench_table11_diagnosis.cpp.o"
  "CMakeFiles/bench_table11_diagnosis.dir/bench_table11_diagnosis.cpp.o.d"
  "bench_table11_diagnosis"
  "bench_table11_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
