# Empty dependencies file for bench_table3_bist_vs_sbst.
# This may be replaced when dependencies are built.
