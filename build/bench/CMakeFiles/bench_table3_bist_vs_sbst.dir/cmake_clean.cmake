file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bist_vs_sbst.dir/bench_table3_bist_vs_sbst.cpp.o"
  "CMakeFiles/bench_table3_bist_vs_sbst.dir/bench_table3_bist_vs_sbst.cpp.o.d"
  "bench_table3_bist_vs_sbst"
  "bench_table3_bist_vs_sbst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bist_vs_sbst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
