file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_interbus.dir/bench_table9_interbus.cpp.o"
  "CMakeFiles/bench_table9_interbus.dir/bench_table9_interbus.cpp.o.d"
  "bench_table9_interbus"
  "bench_table9_interbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_interbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
