# Empty dependencies file for bench_table8_control_bus.
# This may be replaced when dependencies are built.
