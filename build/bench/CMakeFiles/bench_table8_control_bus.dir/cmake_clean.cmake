file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_control_bus.dir/bench_table8_control_bus.cpp.o"
  "CMakeFiles/bench_table8_control_bus.dir/bench_table8_control_bus.cpp.o.d"
  "bench_table8_control_bus"
  "bench_table8_control_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_control_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
