file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ma_tests.dir/bench_fig1_ma_tests.cpp.o"
  "CMakeFiles/bench_fig1_ma_tests.dir/bench_fig1_ma_tests.cpp.o.d"
  "bench_fig1_ma_tests"
  "bench_fig1_ma_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ma_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
