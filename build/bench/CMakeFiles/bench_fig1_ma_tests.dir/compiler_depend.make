# Empty compiler generated dependencies file for bench_fig1_ma_tests.
# This may be replaced when dependencies are built.
