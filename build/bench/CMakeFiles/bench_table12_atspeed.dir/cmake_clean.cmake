file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_atspeed.dir/bench_table12_atspeed.cpp.o"
  "CMakeFiles/bench_table12_atspeed.dir/bench_table12_atspeed.cpp.o.d"
  "bench_table12_atspeed"
  "bench_table12_atspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_atspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
