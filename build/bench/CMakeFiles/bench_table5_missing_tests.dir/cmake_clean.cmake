file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_missing_tests.dir/bench_table5_missing_tests.cpp.o"
  "CMakeFiles/bench_table5_missing_tests.dir/bench_table5_missing_tests.cpp.o.d"
  "bench_table5_missing_tests"
  "bench_table5_missing_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_missing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
