# Empty compiler generated dependencies file for bench_table5_missing_tests.
# This may be replaced when dependencies are built.
