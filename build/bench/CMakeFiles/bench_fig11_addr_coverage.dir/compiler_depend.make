# Empty compiler generated dependencies file for bench_fig11_addr_coverage.
# This may be replaced when dependencies are built.
