file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_ordering.dir/bench_table10_ordering.cpp.o"
  "CMakeFiles/bench_table10_ordering.dir/bench_table10_ordering.cpp.o.d"
  "bench_table10_ordering"
  "bench_table10_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
