file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_random_baseline.dir/bench_table7_random_baseline.cpp.o"
  "CMakeFiles/bench_table7_random_baseline.dir/bench_table7_random_baseline.cpp.o.d"
  "bench_table7_random_baseline"
  "bench_table7_random_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_random_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
