# Empty dependencies file for bench_table7_random_baseline.
# This may be replaced when dependencies are built.
