# Empty dependencies file for bench_table4_masking_ablation.
# This may be replaced when dependencies are built.
