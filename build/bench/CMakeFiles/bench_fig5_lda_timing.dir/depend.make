# Empty dependencies file for bench_fig5_lda_timing.
# This may be replaced when dependencies are built.
