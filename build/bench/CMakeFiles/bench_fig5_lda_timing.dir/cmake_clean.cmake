file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lda_timing.dir/bench_fig5_lda_timing.cpp.o"
  "CMakeFiles/bench_fig5_lda_timing.dir/bench_fig5_lda_timing.cpp.o.d"
  "bench_fig5_lda_timing"
  "bench_fig5_lda_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lda_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
