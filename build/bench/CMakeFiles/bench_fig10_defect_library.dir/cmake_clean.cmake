file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_defect_library.dir/bench_fig10_defect_library.cpp.o"
  "CMakeFiles/bench_fig10_defect_library.dir/bench_fig10_defect_library.cpp.o.d"
  "bench_fig10_defect_library"
  "bench_fig10_defect_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_defect_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
