# Empty dependencies file for bench_fig10_defect_library.
# This may be replaced when dependencies are built.
