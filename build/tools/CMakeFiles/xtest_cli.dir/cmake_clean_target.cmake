file(REMOVE_RECURSE
  "libxtest_cli.a"
)
