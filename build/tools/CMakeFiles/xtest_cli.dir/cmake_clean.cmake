file(REMOVE_RECURSE
  "CMakeFiles/xtest_cli.dir/cli.cpp.o"
  "CMakeFiles/xtest_cli.dir/cli.cpp.o.d"
  "libxtest_cli.a"
  "libxtest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
