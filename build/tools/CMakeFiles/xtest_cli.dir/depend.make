# Empty dependencies file for xtest_cli.
# This may be replaced when dependencies are built.
