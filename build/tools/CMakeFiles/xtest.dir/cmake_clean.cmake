file(REMOVE_RECURSE
  "CMakeFiles/xtest.dir/xtest_main.cpp.o"
  "CMakeFiles/xtest.dir/xtest_main.cpp.o.d"
  "xtest"
  "xtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
