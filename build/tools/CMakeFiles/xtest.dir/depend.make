# Empty dependencies file for xtest.
# This may be replaced when dependencies are built.
